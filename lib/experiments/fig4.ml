type scheme =
  | Fifo_both
  | Pifo_naive
  | Pifo_pfabric_only
  | Qvisor_policy of string

let scheme_name = function
  | Fifo_both -> "FIFO: pFabric and EDF"
  | Pifo_naive -> "PIFO: pFabric and EDF"
  | Pifo_pfabric_only -> "PIFO: pFabric"
  | Qvisor_policy p -> "QVISOR: " ^ p

let paper_schemes =
  [
    Fifo_both;
    Pifo_naive;
    Pifo_pfabric_only;
    Qvisor_policy "edf >> pfabric";
    Qvisor_policy "pfabric + edf";
    Qvisor_policy "pfabric >> edf";
  ]

type params = {
  leaves : int;
  spines : int;
  hosts_per_leaf : int;
  access_rate : float;
  fabric_rate : float;
  link_delay : float;
  queue_capacity_pkts : int;
  load : float;
  cbr_flows : int;
  cbr_rate : float;
  cbr_deadline : float;
  duration : float;
  warmup : float;
  drain : float;
  pfabric_unit_bytes : int;
  edf_unit_seconds : float;
  window : int;
  rto : float;
  seed : int;
  levels : int option;
  backend : Qvisor.Deploy.backend option;
  tree_backend : bool;
  inject_qdisc : (capacity_pkts:int -> Sched.Qdisc.t) option;
}

let quick =
  {
    leaves = 2;
    spines = 2;
    hosts_per_leaf = 4;
    access_rate = 1e9;
    fabric_rate = 4e9;
    link_delay = 1e-6;
    queue_capacity_pkts = 100;
    load = 0.5;
    cbr_flows = 6;
    cbr_rate = 0.5e9;
    cbr_deadline = 2e-3;
    duration = 0.08;
    warmup = 0.02;
    drain = 0.4;
    pfabric_unit_bytes = 1000;
    edf_unit_seconds = 2e-5;
    window = 16;
    rto = 4e-3;
    seed = 1;
    levels = None;
    backend = None;
    tree_backend = false;
    inject_qdisc = None;
  }

let default =
  {
    quick with
    leaves = 3;
    spines = 2;
    hosts_per_leaf = 8;
    cbr_flows = 17;
    duration = 0.2;
    warmup = 0.05;
    drain = 0.6;
  }

let paper_scale =
  {
    quick with
    leaves = 9;
    spines = 4;
    hosts_per_leaf = 16;
    cbr_flows = 100;
    duration = 1.0;
    warmup = 0.2;
    drain = 1.0;
  }

type slo_report = {
  objectives : Qvisor.Slo.objective list;
  verdicts : (Qvisor.Tenant.t * Engine.Health.state * Qvisor.Slo.status) list;
  health_alerts : int;
}

type result = {
  scheme : string;
  load : float;
  small_mean_ms : float;
  small_p99_ms : float;
  large_mean_ms : float;
  large_p99_ms : float;
  overall_mean_ms : float;
  flows_started : int;
  flows_completed : int;
  drops : int;
  cbr_deadline_fraction : float;
  events_fired : int;
  wall_seconds : float;
  slo : slo_report option;
}

let pfabric_tenant_id = 0

let edf_tenant_id = 1

(* QVISOR tenant declarations for this workload: pFabric ranks span the
   remaining-size range up to the flow-size cap; EDF ranks span the
   deadline budget in rank units. *)
let qvisor_tenants params =
  let pfabric_hi = 30_000_000 / params.pfabric_unit_bytes in
  (* CBR budgets are spread up to 1.5x the base deadline. *)
  let edf_hi =
    int_of_float (1.5 *. params.cbr_deadline /. params.edf_unit_seconds)
  in
  [
    Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:pfabric_hi
      ~id:pfabric_tenant_id ~name:"pfabric" ();
    Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:edf_hi
      ~id:edf_tenant_id ~name:"edf" ();
  ]

(* Arrival envelopes for the worst-case analysis.  The burst term is the
   physically realizable worst case at a port: a full queue of MTU
   packets bounds any packet's backlog regardless of the Poisson
   arrivals, so bounds derived from it hold empirically.  Rates are the
   offered loads in bytes/s; the link rate used is the access rate — the
   slowest (binding) link of the fabric. *)
let slo_envelopes params =
  let sigma = float_of_int (params.queue_capacity_pkts * 1518) in
  [
    ( pfabric_tenant_id,
      Qvisor.Latency.envelope ~sigma
        ~rho:(params.load *. params.access_rate /. 8.) );
    (edf_tenant_id, Qvisor.Latency.envelope ~sigma ~rho:(params.cbr_rate /. 8.));
  ]

(* Everything the online audit needs, built only for QVISOR
   pre-processor schemes with [~slo:true]. *)
type slo_runtime = {
  auditor : Qvisor.Slo.t;
  health : Engine.Health.t;
  guard : Qvisor.Guard.t;
}

let health_severity = function
  | Engine.Health.Healthy -> 0.
  | Engine.Health.Degraded -> 1.
  | Engine.Health.Violating -> 2.

let run ?(telemetry = Engine.Telemetry.disabled)
    ?(profiler = Engine.Span.disabled) ?flight ?on_anomaly ?(slo = false)
    ?alerts ?(slo_interval = 0.01) ?(on_tick = fun (_ : float) -> ())
    ?(perf = true) params scheme =
  Engine.Span.with_ profiler ~name:"fig4.run" @@ fun () ->
  let ( let* ) = Result.bind in
  let num_hosts = params.leaves * params.hosts_per_leaf in
  let topo, routing =
    Engine.Span.with_ profiler ~name:"fig4.topology" @@ fun () ->
    let topo =
      Netsim.Topology.leaf_spine ~leaves:params.leaves ~spines:params.spines
        ~hosts_per_leaf:params.hosts_per_leaf ~access_rate:params.access_rate
        ~fabric_rate:params.fabric_rate ~link_delay:params.link_delay
    in
    (topo, Netsim.Routing.compute topo)
  in
  let sim = Engine.Sim.create ~profiler () in
  (* The perf layer (stage meters, GC gauges, pause monitor) rides on the
     telemetry registry; [~perf:false] isolates its cost for the overhead
     benchmark while keeping the rest of the instrumentation identical. *)
  let meters =
    if perf && Engine.Telemetry.is_enabled telemetry then
      Engine.Perf.Meters.create ()
    else Engine.Perf.Meters.disabled
  in
  let pause =
    if Engine.Perf.Meters.is_enabled meters then Engine.Perf.Pause.start ()
    else None
  in
  let rng = Engine.Rng.create ~seed:params.seed in
  let transport = Netsim.Transport.create ~sim () in
  let* preprocess, make_qdisc, slo_rt =
    let fifo _ = Sched.Fifo_queue.create ~capacity_pkts:params.queue_capacity_pkts () in
    (* Exact PIFO semantics from the O(1) bucket-queue core; raw pFabric
       ranks (flow-size cap / unit bytes) fit the default rank space, and
       anything beyond it is clamped for ordering only. *)
    let pifo _ =
      Sched.Bucket_queue.create ~name:"pifo"
        ~capacity_pkts:params.queue_capacity_pkts ()
    in
    let* () =
      if slo && slo_interval <= 0. then
        Error (Qvisor.Error.Config "slo_interval must be positive")
      else Ok ()
    in
    let* () =
      match scheme with
      | Qvisor_policy _ when not params.tree_backend -> Ok ()
      | _ when slo ->
        Error
          (Qvisor.Error.Config
             "slo auditing needs a QVISOR pre-processor scheme (it derives \
              objectives from the synthesized plan)")
      | _ -> Ok ()
    in
    match scheme with
    | Fifo_both -> Ok (None, fifo, None)
    | Pifo_naive | Pifo_pfabric_only -> Ok (None, pifo, None)
    | Qvisor_policy policy_str when params.tree_backend ->
      (* §5 alternative: compile the policy into a PIFO tree per port; raw
         ranks go straight in, no pre-processor.  Build one tree up front
         so any policy/deployment defect surfaces here as an [Error]; the
         per-port builds below can then no longer fail. *)
      let* policy = Qvisor.Policy.parse policy_str in
      let build () =
        Qvisor.Deploy.pifo_tree_of_policy ~tenants:(qvisor_tenants params)
          ~policy ~capacity_pkts:params.queue_capacity_pkts ()
      in
      let* _probe = build () in
      let make_tree _ =
        match build () with
        | Ok q -> q
        | Error e -> invalid_arg ("Fig4: tree backend: " ^ Qvisor.Error.to_string e)
      in
      Ok (None, make_tree, None)
    | Qvisor_policy policy_str ->
      let config =
        { Qvisor.Synthesizer.default_config with levels = params.levels }
      in
      let* policy = Qvisor.Policy.parse policy_str in
      let tenants = qvisor_tenants params in
      let* plan =
        Qvisor.Synthesizer.synthesize ~profiler ~config ~tenants ~policy ()
      in
      let slo_rt =
        if not slo then None
        else begin
          let objectives =
            Qvisor.Slo.derive ~plan ~envelopes:(slo_envelopes params)
              ~link_rate:params.access_rate ()
          in
          let auditor = Qvisor.Slo.create ~objectives () in
          let health = Engine.Health.create ?alerts () in
          List.iter
            (fun (tn : Qvisor.Tenant.t) ->
              Engine.Health.watch health ~id:tn.Qvisor.Tenant.id
                ~name:tn.Qvisor.Tenant.name)
            tenants;
          let guard =
            Qvisor.Guard.create ~telemetry
              ~clock:(fun () -> Engine.Sim.now sim)
              ~tenants ()
          in
          Some { auditor; health; guard }
        end
      in
      let on_rank_error =
        Option.map
          (fun rt id e -> Qvisor.Slo.on_rank_error rt.auditor ~tenant_id:id e)
          slo_rt
      in
      let pre =
        Qvisor.Preprocessor.of_plan ~profiler ~telemetry ?on_rank_error
          ~rank_error_sample:8 plan
      in
      let* qdisc =
        match params.backend with
        | None -> Ok pifo
        | Some backend ->
          (* Validate the deployment once; per-port instantiation below
             repeats a construction that is now known to succeed. *)
          let* _probe = Qvisor.Deploy.instantiate ~plan backend in
          Ok (fun _ -> Qvisor.Deploy.instantiate_exn ~plan backend)
      in
      let preprocess =
        match slo_rt with
        | None -> Qvisor.Preprocessor.process pre
        | Some rt -> fun p -> Qvisor.Guard.process rt.guard pre p
      in
      Ok (Some preprocess, qdisc, slo_rt)
  in
  (* Fault injection overrides the per-port scheduler wholesale — the
     point is to watch the SLO layer catch a backend that misbehaves. *)
  let make_qdisc =
    match params.inject_qdisc with
    | None -> make_qdisc
    | Some f -> fun _ -> f ~capacity_pkts:params.queue_capacity_pkts
  in
  (* SLO runs arm the flight recorder by default: the drop-spike trigger
     is one of the three fused health signals. *)
  let flight =
    match flight with
    | Some _ -> flight
    | None -> if Option.is_some slo_rt then Some Netsim.Net.default_flight else None
  in
  let user_anomaly =
    Option.value on_anomaly ~default:(fun ~link_id:_ _ -> ())
  in
  let prev = Hashtbl.create 4 in
  (* Per-tenant pending recorder incident, folded into the health machine
     once per evaluation tick (not per trigger fire): the triggers can
     re-fire every cooldown window during a sustained incident, far
     faster than the evaluation cadence, and observing each fire would
     swamp the hysteresis the health machine promises. *)
  let pending_incident : (int, string * float) Hashtbl.t = Hashtbl.create 4 in
  let on_anomaly ~link_id recorder =
    user_anomaly ~link_id recorder;
    match slo_rt with
    | None -> ()
    | Some rt ->
      (* Attribute the port's drop spike to the tenant whose drop rate
         since the previous incident overran its own budget the most.  A
         spike the tenant's objective absorbs (a strictly-lower tier
         being evicted by design of >>) is the policy working — only an
         over-budget incident counts against health. *)
      let worst = ref (-1, 0, 0.) in
      List.iter
        (fun (st : Qvisor.Slo.status) ->
          let id = st.Qvisor.Slo.objective.Qvisor.Slo.tenant.Qvisor.Tenant.id in
          let pd, pa =
            Option.value (Hashtbl.find_opt prev id) ~default:(0, 0)
          in
          let ddrops = st.Qvisor.Slo.drops - pd in
          let dattempts = st.Qvisor.Slo.attempts - pa in
          Hashtbl.replace prev id
            (st.Qvisor.Slo.drops, st.Qvisor.Slo.attempts);
          let rate = float_of_int ddrops /. float_of_int (max 1 dattempts) in
          let over = rate /. st.Qvisor.Slo.objective.Qvisor.Slo.drop_budget in
          let _, _, worst_over = !worst in
          if ddrops > 0 && over > worst_over then worst := (id, ddrops, over))
        (Qvisor.Slo.statuses rt.auditor);
      let id, ddrops, over = !worst in
      if over > 1. then
        let worse =
          match Hashtbl.find_opt pending_incident id with
          | Some (_, prev_over) -> over > prev_over
          | None -> true
        in
        if worse then
          Hashtbl.replace pending_incident id
            ( Printf.sprintf
                "port %d drop spike (+%d tenant drops, %.1fx over budget)"
                link_id ddrops over,
              over )
  in
  let net =
    Netsim.Net.create ~sim ~topo ~routing ~make_qdisc ?preprocess
      ?on_enqueue:
        (Option.map (fun rt p -> Qvisor.Slo.on_enqueue rt.auditor p) slo_rt)
      ?on_dequeue:
        (Option.map
           (fun rt (p : Sched.Packet.t) ->
             Qvisor.Slo.on_delay rt.auditor ~tenant_id:p.Sched.Packet.tenant
               (Engine.Sim.now sim -. p.Sched.Packet.enqueued_at))
           slo_rt)
      ?on_drop:(Option.map (fun rt p -> Qvisor.Slo.on_drop rt.auditor p) slo_rt)
      ?on_tie_inversion:
        (Option.map
           (fun rt (p : Sched.Packet.t) ->
             Qvisor.Slo.on_tie_inversion rt.auditor
               ~tenant_id:p.Sched.Packet.tenant)
           slo_rt)
      ~telemetry ~profiler ?flight ~on_anomaly ~meters
      ~deliver:(Netsim.Transport.deliver transport)
      ()
  in
  Netsim.Transport.attach transport net;
  (* Periodic SLO evaluation: fold the auditor's signal, the guard's
     verdict, and (via [on_anomaly] above) recorder incidents into the
     health machine; mirror the state into gauges so [--metrics-out]
     exposes it. *)
  let final_eval = ref (fun () -> ()) in
  (match slo_rt with
  | None -> ()
  | Some rt ->
    let until = params.duration +. params.drain in
    let tenants = qvisor_tenants params in
    let mirror (tn : Qvisor.Tenant.t) =
      let id = tn.Qvisor.Tenant.id in
      (match Qvisor.Slo.status rt.auditor ~tenant_id:id with
      | None -> ()
      | Some st ->
        let set name v =
          Engine.Telemetry.Gauge.set
            (Engine.Telemetry.gauge telemetry
               (Printf.sprintf "slo.tenant.%d.%s" id name))
            v
        in
        set "fast_burn" st.Qvisor.Slo.fast_burn;
        set "slow_burn" st.Qvisor.Slo.slow_burn;
        set "budget_remaining" st.Qvisor.Slo.budget_remaining;
        set "delay_quantile_seconds" st.Qvisor.Slo.observed_delay);
      Engine.Telemetry.Gauge.set
        (Engine.Telemetry.gauge telemetry
           (Printf.sprintf "health.tenant.%d.state" id))
        (health_severity (Engine.Health.state rt.health ~id))
    in
    let evaluate_all () =
      let now = Engine.Sim.now sim in
      List.iter
        (fun (tn : Qvisor.Tenant.t) ->
          let id = tn.Qvisor.Tenant.id in
          let signal, detail = Qvisor.Slo.evaluate rt.auditor ~tenant_id:id in
          Engine.Health.observe rt.health ~id ~time:now ~source:"slo" ~detail
            signal;
          (match Qvisor.Guard.verdict rt.guard ~tenant_id:id with
          | Qvisor.Guard.Malicious _ ->
            Engine.Health.observe rt.health ~id ~time:now ~source:"guard"
              ~detail:"guard verdict: malicious" Engine.Health.Breach
          | Qvisor.Guard.Suspicious _ ->
            Engine.Health.observe rt.health ~id ~time:now ~source:"guard"
              ~detail:"guard verdict: suspicious" Engine.Health.Warn
          | Qvisor.Guard.Conforming -> ());
          (match Hashtbl.find_opt pending_incident id with
          | Some (detail, _) ->
            Hashtbl.remove pending_incident id;
            Engine.Health.observe rt.health ~id ~time:now ~source:"recorder"
              ~detail Engine.Health.Warn
          | None -> ());
          if Engine.Telemetry.is_enabled telemetry then mirror tn)
        tenants
    in
    final_eval := evaluate_all;
    let rec tick () =
      evaluate_all ();
      if Engine.Perf.Meters.is_enabled meters then begin
        Engine.Perf.Meters.publish meters telemetry;
        Engine.Perf.sample_gc ?pause telemetry
      end;
      on_tick (Engine.Sim.now sim);
      if Engine.Sim.now sim +. slo_interval <= until then
        Engine.Sim.schedule_after_ sim ~delay:slo_interval tick
    in
    Engine.Sim.schedule_after_ sim ~delay:slo_interval tick);
  (* Tenant 0: pFabric data-mining flows (always present). *)
  let metrics = Netsim.Metrics.create () in
  let started_measured = ref 0 in
  let on_complete (r : Netsim.Transport.flow_result) =
    if r.Netsim.Transport.started_at >= params.warmup then
      Netsim.Metrics.record metrics r
  in
  let pfabric_ranker = Sched.Ranker.pfabric ~unit_bytes:params.pfabric_unit_bytes () in
  let arrivals =
    Netsim.Workload.poisson_open_loop ~sim ~rng:(Engine.Rng.split rng)
      ~transport ~tenant:pfabric_tenant_id ~ranker:pfabric_ranker ~num_hosts
      ~load:params.load ~access_rate:params.access_rate
      ~dist:(Netsim.Workload.data_mining ()) ~window:params.window
      ~rto:params.rto ~until:params.duration ~on_complete ()
  in
  (* Tenant 1: EDF CBR flows (absent in the pFabric-only ideal). *)
  let cbr_stats =
    match scheme with
    | Pifo_pfabric_only -> []
    | Fifo_both | Pifo_naive | Qvisor_policy _ ->
      let edf_ranker =
        Sched.Ranker.edf ~unit_seconds:params.edf_unit_seconds
          ~horizon:(1.5 *. params.cbr_deadline)
          ()
      in
      Netsim.Workload.cbr_tenant ~sim ~rng:(Engine.Rng.split rng) ~transport
        ~tenant:edf_tenant_id ~ranker:edf_ranker ~num_hosts
        ~flows:params.cbr_flows ~rate:params.cbr_rate
        ~deadline_budget:params.cbr_deadline
        ~until:(params.duration +. params.drain)
        ()
  in
  Engine.Sim.run ~until:(params.duration +. params.drain) sim;
  ignore !started_measured;
  let events_fired = Engine.Sim.events_fired sim in
  let wall_seconds = Engine.Sim.busy_seconds sim in
  if Engine.Telemetry.is_enabled telemetry then begin
    Engine.Telemetry.Gauge.set
      (Engine.Telemetry.gauge telemetry "sim.events_fired")
      (float_of_int events_fired);
    Engine.Telemetry.Gauge.set
      (Engine.Telemetry.gauge telemetry "sim.wall_seconds")
      wall_seconds
  end;
  if Engine.Perf.Meters.is_enabled meters then begin
    Engine.Perf.Meters.publish meters telemetry;
    Engine.Perf.sample_gc ?pause telemetry
  end;
  let cbr_deadline_fraction =
    match cbr_stats with
    | [] -> nan
    | stats ->
      let sent =
        List.fold_left (fun a s -> a + s.Netsim.Transport.sent) 0 stats
      in
      let met =
        List.fold_left (fun a s -> a + s.Netsim.Transport.deadline_met) 0 stats
      in
      if sent = 0 then nan else float_of_int met /. float_of_int sent
  in
  let slo_report =
    Option.map
      (fun rt ->
        !final_eval ();
        let tenants = qvisor_tenants params in
        {
          objectives = Qvisor.Slo.objectives rt.auditor;
          verdicts =
            List.map
              (fun (tn : Qvisor.Tenant.t) ->
                let id = tn.Qvisor.Tenant.id in
                ( tn,
                  Engine.Health.state rt.health ~id,
                  Option.get (Qvisor.Slo.status rt.auditor ~tenant_id:id) ))
              tenants;
          health_alerts = Engine.Health.alerts_emitted rt.health;
        })
      slo_rt
  in
  Ok
    {
      scheme = scheme_name scheme;
      load = params.load;
      small_mean_ms = Netsim.Metrics.mean_fct_ms metrics Netsim.Metrics.Small;
      small_p99_ms = Netsim.Metrics.p99_fct_ms metrics Netsim.Metrics.Small;
      large_mean_ms = Netsim.Metrics.mean_fct_ms metrics Netsim.Metrics.Large;
      large_p99_ms = Netsim.Metrics.p99_fct_ms metrics Netsim.Metrics.Large;
      overall_mean_ms = 1e3 *. Engine.Stats.mean (Netsim.Metrics.overall metrics);
      flows_started = arrivals.Netsim.Workload.flows_started;
      flows_completed = Netsim.Metrics.completed metrics;
      drops = Netsim.Net.total_drops net;
      cbr_deadline_fraction;
      events_fired;
      wall_seconds;
      slo = slo_report;
    }

let run_exn ?telemetry ?profiler params scheme =
  match run ?telemetry ?profiler params scheme with
  | Ok r -> r
  | Error e -> invalid_arg ("Fig4.run: " ^ Qvisor.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Parallel sweep                                                     *)
(* ------------------------------------------------------------------ *)

type job = { index : int; job_scheme : scheme; job_load : float; job_seed : int }

let jobs_of_grid params ~loads ~schemes =
  (* Outer loop over loads, inner over schemes — the same order the old
     serial sweep produced, so result lists (and any CSV written from
     them) are independent of how the jobs are later scheduled. *)
  List.concat_map (fun load -> List.map (fun s -> (load, s)) schemes) loads
  |> List.mapi (fun index (load, scheme) ->
         {
           index;
           job_scheme = scheme;
           job_load = load;
           job_seed = Engine.Rng.derive ~seed:params.seed index;
         })

let run_jobs ?jobs ?(telemetry_for = fun (_ : job) -> Engine.Telemetry.disabled)
    ?(profiler_for = fun (_ : job) -> Engine.Span.disabled)
    ?(on_start = fun (_ : job) -> ()) ?(slo = false) ?(perf = false) params
    jobs_list =
  (* [perf] defaults off here, unlike [run]: the perf layer's gauges are
     wall-clock rates, so merged snapshots would no longer be identical
     across worker counts — the invariant parallel sweeps promise. *)
  let outcomes =
    Engine.Parallel.map ?jobs
      (fun job ->
        on_start job;
        run
          ~telemetry:(telemetry_for job)
          ~profiler:(profiler_for job)
          ~slo ~perf
          { params with load = job.job_load }
          job.job_scheme)
      jobs_list
  in
  (* Surface the lowest-indexed failure, mirroring what a serial run
     would have hit first. *)
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok r :: rest -> collect (r :: acc) rest
    | Error e :: _ -> Error e
  in
  collect [] outcomes

let sweep ?jobs ?telemetry_for ?profiler_for ?on_start ?slo ?perf params ~loads
    ~schemes =
  run_jobs ?jobs ?telemetry_for ?profiler_for ?on_start ?slo ?perf params
    (jobs_of_grid params ~loads ~schemes)

let paper_loads = [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ]

let print_panel ppf ~title ~pick results =
  let loads = List.sort_uniq compare (List.map (fun r -> r.load) results) in
  let schemes =
    List.fold_left
      (fun acc r -> if List.mem r.scheme acc then acc else acc @ [ r.scheme ])
      [] results
  in
  Format.fprintf ppf "@[<v>%s@," title;
  Format.fprintf ppf "%-6s" "load";
  List.iter (fun s -> Format.fprintf ppf " | %28s" s) schemes;
  Format.pp_print_cut ppf ();
  List.iter
    (fun load ->
      Format.fprintf ppf "%-6.2f" load;
      List.iter
        (fun s ->
          match
            List.find_opt (fun r -> r.load = load && r.scheme = s) results
          with
          | Some r -> Format.fprintf ppf " | %28.3f" (pick r)
          | None -> Format.fprintf ppf " | %28s" "-")
        schemes;
      Format.pp_print_cut ppf ())
    loads;
  Format.fprintf ppf "@]"

let print_fig4 ppf results =
  print_panel ppf
    ~title:"Fig. 4a — pFabric mean FCT (ms), small flows (0, 100 KB)"
    ~pick:(fun r -> r.small_mean_ms)
    results;
  Format.pp_print_newline ppf ();
  print_panel ppf
    ~title:"Fig. 4b — pFabric mean FCT (ms), large flows [1 MB, inf)"
    ~pick:(fun r -> r.large_mean_ms)
    results;
  Format.pp_print_newline ppf ();
  Format.fprintf ppf "@[<v>appendix — completions / drops / CBR deadline hit-rate@,";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "load %.2f %-30s completed %5d/%5d drops %7d cbr-ok %s@," r.load
        r.scheme r.flows_completed r.flows_started r.drops
        (if Float.is_nan r.cbr_deadline_fraction then "-"
         else Printf.sprintf "%.3f" r.cbr_deadline_fraction))
    results;
  Format.fprintf ppf "@]"
