type scheme =
  | Fifo_both
  | Pifo_naive
  | Pifo_pfabric_only
  | Qvisor_policy of string

let scheme_name = function
  | Fifo_both -> "FIFO: pFabric and EDF"
  | Pifo_naive -> "PIFO: pFabric and EDF"
  | Pifo_pfabric_only -> "PIFO: pFabric"
  | Qvisor_policy p -> "QVISOR: " ^ p

let paper_schemes =
  [
    Fifo_both;
    Pifo_naive;
    Pifo_pfabric_only;
    Qvisor_policy "edf >> pfabric";
    Qvisor_policy "pfabric + edf";
    Qvisor_policy "pfabric >> edf";
  ]

type params = {
  leaves : int;
  spines : int;
  hosts_per_leaf : int;
  access_rate : float;
  fabric_rate : float;
  link_delay : float;
  queue_capacity_pkts : int;
  load : float;
  cbr_flows : int;
  cbr_rate : float;
  cbr_deadline : float;
  duration : float;
  warmup : float;
  drain : float;
  pfabric_unit_bytes : int;
  edf_unit_seconds : float;
  window : int;
  rto : float;
  seed : int;
  levels : int option;
  backend : Qvisor.Deploy.backend option;
  tree_backend : bool;
}

let quick =
  {
    leaves = 2;
    spines = 2;
    hosts_per_leaf = 4;
    access_rate = 1e9;
    fabric_rate = 4e9;
    link_delay = 1e-6;
    queue_capacity_pkts = 100;
    load = 0.5;
    cbr_flows = 6;
    cbr_rate = 0.5e9;
    cbr_deadline = 2e-3;
    duration = 0.08;
    warmup = 0.02;
    drain = 0.4;
    pfabric_unit_bytes = 1000;
    edf_unit_seconds = 2e-5;
    window = 16;
    rto = 4e-3;
    seed = 1;
    levels = None;
    backend = None;
    tree_backend = false;
  }

let default =
  {
    quick with
    leaves = 3;
    spines = 2;
    hosts_per_leaf = 8;
    cbr_flows = 17;
    duration = 0.2;
    warmup = 0.05;
    drain = 0.6;
  }

let paper_scale =
  {
    quick with
    leaves = 9;
    spines = 4;
    hosts_per_leaf = 16;
    cbr_flows = 100;
    duration = 1.0;
    warmup = 0.2;
    drain = 1.0;
  }

type result = {
  scheme : string;
  load : float;
  small_mean_ms : float;
  small_p99_ms : float;
  large_mean_ms : float;
  large_p99_ms : float;
  overall_mean_ms : float;
  flows_started : int;
  flows_completed : int;
  drops : int;
  cbr_deadline_fraction : float;
  events_fired : int;
  wall_seconds : float;
}

let pfabric_tenant_id = 0

let edf_tenant_id = 1

(* QVISOR tenant declarations for this workload: pFabric ranks span the
   remaining-size range up to the flow-size cap; EDF ranks span the
   deadline budget in rank units. *)
let qvisor_tenants params =
  let pfabric_hi = 30_000_000 / params.pfabric_unit_bytes in
  (* CBR budgets are spread up to 1.5x the base deadline. *)
  let edf_hi =
    int_of_float (1.5 *. params.cbr_deadline /. params.edf_unit_seconds)
  in
  [
    Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:pfabric_hi
      ~id:pfabric_tenant_id ~name:"pfabric" ();
    Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:edf_hi
      ~id:edf_tenant_id ~name:"edf" ();
  ]

let run ?(telemetry = Engine.Telemetry.disabled)
    ?(profiler = Engine.Span.disabled) ?flight ?on_anomaly params scheme =
  Engine.Span.with_ profiler ~name:"fig4.run" @@ fun () ->
  let ( let* ) = Result.bind in
  let num_hosts = params.leaves * params.hosts_per_leaf in
  let topo, routing =
    Engine.Span.with_ profiler ~name:"fig4.topology" @@ fun () ->
    let topo =
      Netsim.Topology.leaf_spine ~leaves:params.leaves ~spines:params.spines
        ~hosts_per_leaf:params.hosts_per_leaf ~access_rate:params.access_rate
        ~fabric_rate:params.fabric_rate ~link_delay:params.link_delay
    in
    (topo, Netsim.Routing.compute topo)
  in
  let sim = Engine.Sim.create ~profiler () in
  let rng = Engine.Rng.create ~seed:params.seed in
  let transport = Netsim.Transport.create ~sim () in
  let* preprocess, make_qdisc =
    let fifo _ = Sched.Fifo_queue.create ~capacity_pkts:params.queue_capacity_pkts () in
    let pifo _ = Sched.Pifo_queue.create ~capacity_pkts:params.queue_capacity_pkts () in
    match scheme with
    | Fifo_both -> Ok (None, fifo)
    | Pifo_naive | Pifo_pfabric_only -> Ok (None, pifo)
    | Qvisor_policy policy_str when params.tree_backend ->
      (* §5 alternative: compile the policy into a PIFO tree per port; raw
         ranks go straight in, no pre-processor.  Build one tree up front
         so any policy/deployment defect surfaces here as an [Error]; the
         per-port builds below can then no longer fail. *)
      let* policy = Qvisor.Policy.parse policy_str in
      let build () =
        Qvisor.Deploy.pifo_tree_of_policy ~tenants:(qvisor_tenants params)
          ~policy ~capacity_pkts:params.queue_capacity_pkts ()
      in
      let* _probe = build () in
      let make_tree _ =
        match build () with
        | Ok q -> q
        | Error e -> invalid_arg ("Fig4: tree backend: " ^ Qvisor.Error.to_string e)
      in
      Ok (None, make_tree)
    | Qvisor_policy policy_str ->
      let config =
        { Qvisor.Synthesizer.default_config with levels = params.levels }
      in
      let* policy = Qvisor.Policy.parse policy_str in
      let* plan =
        Qvisor.Synthesizer.synthesize ~profiler ~config
          ~tenants:(qvisor_tenants params)
          ~policy ()
      in
      let pre = Qvisor.Preprocessor.of_plan ~profiler ~telemetry plan in
      let* qdisc =
        match params.backend with
        | None -> Ok pifo
        | Some backend ->
          (* Validate the deployment once; per-port instantiation below
             repeats a construction that is now known to succeed. *)
          let* _probe = Qvisor.Deploy.instantiate ~plan backend in
          Ok (fun _ -> Qvisor.Deploy.instantiate_exn ~plan backend)
      in
      Ok (Some (Qvisor.Preprocessor.process pre), qdisc)
  in
  let net =
    Netsim.Net.create ~sim ~topo ~routing ~make_qdisc ?preprocess ~telemetry
      ~profiler ?flight ?on_anomaly
      ~deliver:(Netsim.Transport.deliver transport)
      ()
  in
  Netsim.Transport.attach transport net;
  (* Tenant 0: pFabric data-mining flows (always present). *)
  let metrics = Netsim.Metrics.create () in
  let started_measured = ref 0 in
  let on_complete (r : Netsim.Transport.flow_result) =
    if r.Netsim.Transport.started_at >= params.warmup then
      Netsim.Metrics.record metrics r
  in
  let pfabric_ranker = Sched.Ranker.pfabric ~unit_bytes:params.pfabric_unit_bytes () in
  let arrivals =
    Netsim.Workload.poisson_open_loop ~sim ~rng:(Engine.Rng.split rng)
      ~transport ~tenant:pfabric_tenant_id ~ranker:pfabric_ranker ~num_hosts
      ~load:params.load ~access_rate:params.access_rate
      ~dist:(Netsim.Workload.data_mining ()) ~window:params.window
      ~rto:params.rto ~until:params.duration ~on_complete ()
  in
  (* Tenant 1: EDF CBR flows (absent in the pFabric-only ideal). *)
  let cbr_stats =
    match scheme with
    | Pifo_pfabric_only -> []
    | Fifo_both | Pifo_naive | Qvisor_policy _ ->
      let edf_ranker =
        Sched.Ranker.edf ~unit_seconds:params.edf_unit_seconds
          ~horizon:(1.5 *. params.cbr_deadline)
          ()
      in
      Netsim.Workload.cbr_tenant ~sim ~rng:(Engine.Rng.split rng) ~transport
        ~tenant:edf_tenant_id ~ranker:edf_ranker ~num_hosts
        ~flows:params.cbr_flows ~rate:params.cbr_rate
        ~deadline_budget:params.cbr_deadline
        ~until:(params.duration +. params.drain)
        ()
  in
  Engine.Sim.run ~until:(params.duration +. params.drain) sim;
  ignore !started_measured;
  let events_fired = Engine.Sim.events_fired sim in
  let wall_seconds = Engine.Sim.busy_seconds sim in
  if Engine.Telemetry.is_enabled telemetry then begin
    Engine.Telemetry.Gauge.set
      (Engine.Telemetry.gauge telemetry "sim.events_fired")
      (float_of_int events_fired);
    Engine.Telemetry.Gauge.set
      (Engine.Telemetry.gauge telemetry "sim.wall_seconds")
      wall_seconds
  end;
  let cbr_deadline_fraction =
    match cbr_stats with
    | [] -> nan
    | stats ->
      let sent =
        List.fold_left (fun a s -> a + s.Netsim.Transport.sent) 0 stats
      in
      let met =
        List.fold_left (fun a s -> a + s.Netsim.Transport.deadline_met) 0 stats
      in
      if sent = 0 then nan else float_of_int met /. float_of_int sent
  in
  Ok
    {
      scheme = scheme_name scheme;
      load = params.load;
      small_mean_ms = Netsim.Metrics.mean_fct_ms metrics Netsim.Metrics.Small;
      small_p99_ms = Netsim.Metrics.p99_fct_ms metrics Netsim.Metrics.Small;
      large_mean_ms = Netsim.Metrics.mean_fct_ms metrics Netsim.Metrics.Large;
      large_p99_ms = Netsim.Metrics.p99_fct_ms metrics Netsim.Metrics.Large;
      overall_mean_ms = 1e3 *. Engine.Stats.mean (Netsim.Metrics.overall metrics);
      flows_started = arrivals.Netsim.Workload.flows_started;
      flows_completed = Netsim.Metrics.completed metrics;
      drops = Netsim.Net.total_drops net;
      cbr_deadline_fraction;
      events_fired;
      wall_seconds;
    }

let run_exn ?telemetry ?profiler params scheme =
  match run ?telemetry ?profiler params scheme with
  | Ok r -> r
  | Error e -> invalid_arg ("Fig4.run: " ^ Qvisor.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Parallel sweep                                                     *)
(* ------------------------------------------------------------------ *)

type job = { index : int; job_scheme : scheme; job_load : float; job_seed : int }

let jobs_of_grid params ~loads ~schemes =
  (* Outer loop over loads, inner over schemes — the same order the old
     serial sweep produced, so result lists (and any CSV written from
     them) are independent of how the jobs are later scheduled. *)
  List.concat_map (fun load -> List.map (fun s -> (load, s)) schemes) loads
  |> List.mapi (fun index (load, scheme) ->
         {
           index;
           job_scheme = scheme;
           job_load = load;
           job_seed = Engine.Rng.derive ~seed:params.seed index;
         })

let run_jobs ?jobs ?(telemetry_for = fun (_ : job) -> Engine.Telemetry.disabled)
    ?(profiler_for = fun (_ : job) -> Engine.Span.disabled)
    ?(on_start = fun (_ : job) -> ()) params jobs_list =
  let outcomes =
    Engine.Parallel.map ?jobs
      (fun job ->
        on_start job;
        run
          ~telemetry:(telemetry_for job)
          ~profiler:(profiler_for job)
          { params with load = job.job_load }
          job.job_scheme)
      jobs_list
  in
  (* Surface the lowest-indexed failure, mirroring what a serial run
     would have hit first. *)
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok r :: rest -> collect (r :: acc) rest
    | Error e :: _ -> Error e
  in
  collect [] outcomes

let sweep ?jobs ?telemetry_for ?profiler_for ?on_start params ~loads ~schemes =
  run_jobs ?jobs ?telemetry_for ?profiler_for ?on_start params
    (jobs_of_grid params ~loads ~schemes)

let paper_loads = [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ]

let print_panel ppf ~title ~pick results =
  let loads = List.sort_uniq compare (List.map (fun r -> r.load) results) in
  let schemes =
    List.fold_left
      (fun acc r -> if List.mem r.scheme acc then acc else acc @ [ r.scheme ])
      [] results
  in
  Format.fprintf ppf "@[<v>%s@," title;
  Format.fprintf ppf "%-6s" "load";
  List.iter (fun s -> Format.fprintf ppf " | %28s" s) schemes;
  Format.pp_print_cut ppf ();
  List.iter
    (fun load ->
      Format.fprintf ppf "%-6.2f" load;
      List.iter
        (fun s ->
          match
            List.find_opt (fun r -> r.load = load && r.scheme = s) results
          with
          | Some r -> Format.fprintf ppf " | %28.3f" (pick r)
          | None -> Format.fprintf ppf " | %28s" "-")
        schemes;
      Format.pp_print_cut ppf ())
    loads;
  Format.fprintf ppf "@]"

let print_fig4 ppf results =
  print_panel ppf
    ~title:"Fig. 4a — pFabric mean FCT (ms), small flows (0, 100 KB)"
    ~pick:(fun r -> r.small_mean_ms)
    results;
  Format.pp_print_newline ppf ();
  print_panel ppf
    ~title:"Fig. 4b — pFabric mean FCT (ms), large flows [1 MB, inf)"
    ~pick:(fun r -> r.large_mean_ms)
    results;
  Format.pp_print_newline ppf ();
  Format.fprintf ppf "@[<v>appendix — completions / drops / CBR deadline hit-rate@,";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "load %.2f %-30s completed %5d/%5d drops %7d cbr-ok %s@," r.load
        r.scheme r.flows_completed r.flows_started r.drops
        (if Float.is_nan r.cbr_deadline_fraction then "-"
         else Printf.sprintf "%.3f" r.cbr_deadline_fraction))
    results;
  Format.fprintf ppf "@]"
