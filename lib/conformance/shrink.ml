let with_events sc events = { sc with Scenario.events }

(* One left-to-right pass removing [chunk]-sized event windows; a removal
   is kept when the candidate still fails, and the scan resumes at the
   same index (the window now holds fresh events). *)
let pass ~fails sc chunk =
  let rec go sc i =
    let events = Array.of_list sc.Scenario.events in
    let n = Array.length events in
    if i >= n then sc
    else begin
      let hi = min n (i + chunk) in
      let candidate =
        with_events sc
          (Array.to_list (Array.sub events 0 i)
          @ Array.to_list (Array.sub events hi (n - hi)))
      in
      if fails candidate then go candidate i else go sc (i + chunk)
    end
  in
  go sc 0

let shrink_events ~fails sc =
  let rec loop sc chunk =
    let sc' = pass ~fails sc chunk in
    if chunk > 1 then loop sc' (chunk / 2)
    else if
      List.length sc'.Scenario.events < List.length sc.Scenario.events
    then loop sc' 1
    else sc'
  in
  loop sc (max 1 (List.length sc.Scenario.events / 2))

(* Capacity shrinks expose eviction-model bugs with few events: halve
   while the failure survives, then creep down by one. *)
let shrink_capacity ~fails sc =
  let with_cap c = { sc with Scenario.capacity_pkts = c } in
  let rec go sc =
    let c = sc.Scenario.capacity_pkts in
    if c <= 1 then sc
    else begin
      let half = with_cap (c / 2) in
      if fails half then go half
      else begin
        let minus = with_cap (c - 1) in
        if fails minus then go minus else sc
      end
    end
  in
  go sc

let minimize ~fails sc =
  if not (fails sc) then
    invalid_arg "Shrink.minimize: scenario does not fail";
  let sc = shrink_events ~fails sc in
  let sc = shrink_capacity ~fails sc in
  (* Capacity reduction may have made more events redundant. *)
  shrink_events ~fails sc
