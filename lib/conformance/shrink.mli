(** Greedy scenario minimization.

    Given a failing scenario and a predicate that reproduces the failure,
    the shrinker greedily removes event windows (halving the window from
    [n/2] down to single events, ddmin-style), then walks the queue
    capacity down, then makes a final single-event pass — each step kept
    only if the scenario still fails.  The result is a small reproducer
    suitable for committing next to a bug report and replaying with
    [qvisor-cli conformance --replay]. *)

val minimize :
  fails:(Scenario.t -> bool) -> Scenario.t -> Scenario.t
(** @raise Invalid_argument when [fails scenario] is [false] — the
    scenario to minimize must actually fail. *)
