type t = Lifo_ties | Drop_newest

let all = [ Lifo_ties; Drop_newest ]

let to_string = function
  | Lifo_ties -> "lifo-ties"
  | Drop_newest -> "drop-newest"

let of_string = function
  | "lifo-ties" -> Ok Lifo_ties
  | "drop-newest" -> Ok Drop_newest
  | s ->
    Error
      (Printf.sprintf "unknown fault %S (expected %s)" s
         (String.concat " | " (List.map to_string all)))

let describe = function
  | Lifo_ties -> "equal-rank packets served in reverse arrival order"
  | Drop_newest -> "full queue always tail-drops, never evicts the worst"

(* A PIFO over an explicit key function, sharing Pifo_queue's shape but
   parameterized so each fault is a one-line deviation. *)
module Key = struct
  type t = int * int

  let compare = compare
end

module PMap = Map.Make (Key)

let qdisc fault ~capacity_pkts =
  if capacity_pkts <= 0 then invalid_arg "Fault.qdisc: capacity <= 0";
  let key (p : Sched.Packet.t) =
    match fault with
    | Lifo_ties -> (p.Sched.Packet.rank, -p.Sched.Packet.uid)
    | Drop_newest -> (p.Sched.Packet.rank, p.Sched.Packet.uid)
  in
  let store = ref PMap.empty in
  let count = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let insert p =
    store := PMap.add (key p) p !store;
    incr count;
    bytes := !bytes + p.Sched.Packet.size
  in
  let remove k (p : Sched.Packet.t) =
    store := PMap.remove k !store;
    decr count;
    bytes := !bytes - p.Sched.Packet.size
  in
  let enqueue_drop (p : Sched.Packet.t) on_drop =
    if !count < capacity_pkts then insert p
    else begin
      match fault with
      | Drop_newest ->
        incr drops;
        on_drop p
      | Lifo_ties ->
        let worst_key, worst = PMap.max_binding !store in
        if p.Sched.Packet.rank >= worst.Sched.Packet.rank then begin
          incr drops;
          on_drop p
        end
        else begin
          remove worst_key worst;
          insert p;
          incr drops;
          on_drop worst
        end
    end
  in
  let dequeue () =
    match PMap.min_binding_opt !store with
    | None -> None
    | Some (k, p) ->
      remove k p;
      Some p
  in
  Sched.Qdisc.make
    ~name:("fault:" ^ to_string fault)
    ~enqueue_drop ~dequeue
    ~peek:(fun () -> Option.map snd (PMap.min_binding_opt !store))
    ~length:(fun () -> !count)
    ~bytes:(fun () -> !bytes)
    ~drops:(fun () -> !drops)
