(** Differential backend verification.

    Replays a scenario through the real data plane — the synthesized
    plan's {!Qvisor.Preprocessor} followed by a deployed {!Sched.Qdisc}
    backend — and scores the divergence from the {!Oracle}:

    - backends whose {!Qvisor.Deploy.guarantees} are [Exact] must
      reproduce the oracle's dequeue order and drop decisions verbatim
      (any mismatch is a bug, shrunk to a reproducer);
    - approximate backends are quantified instead: per-dequeue
      {e inversions} (a served packet while a strictly better transformed
      rank was queued — the unpifoness metric of the SP-PIFO line of
      work), inversion magnitude, and per-[>>]-edge {e policy violations}
      (a lower strict tier served while a higher tier had a packet
      waiting — the paper's isolation guarantee, measured).

    [run_cases] fans seeded cases out across worker domains with
    {!Engine.Parallel} and merges per-backend statistics in case order,
    so results are identical for any [jobs] value. *)

type backend_spec = {
  bname : string;
  expect_exact : bool;
      (** when true, any oracle divergence is reported as a failure *)
  make :
    plan:Qvisor.Synthesizer.plan ->
    capacity_pkts:int ->
    (Sched.Qdisc.t, Qvisor.Error.t) result;
}

val standard_backends : unit -> backend_spec list
(** The six deployment targets, oracle-exact first: ideal PIFO (exact),
    then SP bank (8 queues), SP-PIFO (8 queues), AIFO, DRR bank (8
    queues) and a 32-bucket calendar queue, each sized from the
    scenario's capacity. *)

val faulty_backend : Fault.t -> backend_spec
(** An [expect_exact] backend carrying an injected bug (named
    ["injected:<fault>"]) — the end-to-end test of the oracle and
    shrinker. *)

(** {1 Single-scenario replay} *)

type replay = {
  served : Oracle.item list;  (** backend dequeue order *)
  dropped : int list;  (** sids the backend dropped, in order *)
  dequeues : int;
  inversions : int;
      (** dequeues with a strictly smaller transformed rank still queued *)
  magnitude_sum : int;  (** summed rank gap of inverted dequeues *)
  magnitude_max : int;
  violations : ((string * string) * int) list;
      (** per strict edge [(higher tier, lower tier)] (tiers rendered in
          policy syntax): dequeues of the lower tier while the higher
          tier had a queued packet; ordered pairs of top-level [>>]
          tiers, zero counts included *)
}

type verdict = { matches : bool; divergence : string option }

val replay :
  ?recorder:Engine.Recorder.t ->
  plan:Qvisor.Synthesizer.plan ->
  qdisc:Sched.Qdisc.t ->
  Scenario.t ->
  replay
(** [recorder] (default: off) receives one flight-recorder event per
    data-plane step — [preprocess] (label -> transformed rank) and
    [enqueue] on every arrival, [drop]/[evict] per victim, [dequeue] per
    service — with the scenario {e sid} as the packet uid and the event
    index as the timestamp.  Replaying a shrunk reproducer with a
    recorder and {!Engine.Recorder.dump}ing it yields the packet-level
    story of the divergence. *)

val compare_to_oracle : Oracle.outcome -> replay -> verdict
(** Exact match: same served sid sequence and same drop sid sequence.
    [divergence] pinpoints the first difference. *)

val run_scenario :
  ?backends:backend_spec list ->
  Scenario.t ->
  ( Oracle.outcome * (backend_spec * replay * verdict) list,
    Qvisor.Error.t )
  result
(** Synthesize the scenario's plan, run the oracle once, then replay
    every backend against it. *)

val fails_oracle : backend:backend_spec -> Scenario.t -> bool
(** [true] when the backend's replay diverges from the oracle — the
    shrinker predicate.  Scenarios that fail to synthesize or deploy are
    treated as non-failing (the shrinker must not wander off the backend
    bug onto a spec problem). *)

(** {1 Seeded fleets} *)

type backend_stats = {
  backend : string;
  expect_exact : bool;
  cases : int;
  exact_cases : int;  (** cases matching the oracle verbatim *)
  dequeues : int;
  inversions : int;
  magnitude_sum : int;
  magnitude_max : int;
  strict_violations : int;  (** per-edge counts summed over edges/cases *)
}

type failure = {
  case_index : int;
  case_seed : int;  (** feed back into {!Scenario.generate} to reproduce *)
  backend : string;
  divergence : string;
}

type run_result = {
  seed : int;
  cases : int;
  total_events : int;
  total_enqueues : int;
  stats : backend_stats list;  (** one row per backend, input order *)
  failures : failure list;
      (** oracle divergences on [expect_exact] backends, case order *)
  errors : (int * string) list;
      (** cases whose synthesis/deploy failed: [(case index, error)] *)
}

val run_cases :
  ?jobs:int ->
  ?telemetry:Engine.Telemetry.t ->
  ?profiler:Engine.Span.t ->
  ?backends:backend_spec list ->
  seed:int ->
  cases:int ->
  unit ->
  run_result
(** Generate [cases] scenarios from per-case seeds
    ([Engine.Rng.derive ~seed i]), verify each against every backend on a
    pool of [jobs] worker domains ({!Engine.Parallel.map}), and merge the
    statistics in case order — byte-identical output for any [jobs].
    With [telemetry], counters [conformance.cases], [conformance.events],
    [conformance.dequeues], [conformance.inversions] and
    [conformance.mismatches] accumulate across the run.  With [profiler],
    each case runs under a private profiler (["conformance.case"] with
    ["conformance.generate"] / ["conformance.verify"] children) merged
    into [profiler] in case order with [tid = case index + 1] — span
    structure independent of [jobs]. *)

val pp_run : Format.formatter -> run_result -> unit
(** The per-backend conformance table. *)
