type item = { sid : int; tenant : int; rank : int }

type outcome = {
  served : item list;
  dropped : int list;
  remaining : item list;
}

let key it = (it.rank, it.sid)

let rec insert it = function
  | [] -> [ it ]
  | x :: _ as l when key it < key x -> it :: l
  | x :: rest -> x :: insert it rest

let rec drop_last = function
  | [] | [ _ ] -> []
  | x :: rest -> x :: drop_last rest

let run ~plan (sc : Scenario.t) =
  let transforms = Hashtbl.create 8 in
  let transform_of tenant_id =
    match Hashtbl.find_opt transforms tenant_id with
    | Some t -> t
    | None ->
      let t = Qvisor.Synthesizer.transform_of plan ~tenant_id in
      Hashtbl.add transforms tenant_id t;
      t
  in
  (* Ascending (rank, sid): the head is the next packet to serve, the last
     element the eviction victim. *)
  let queue = ref [] in
  let len = ref 0 in
  let served = ref [] in
  let dropped = ref [] in
  let next_sid = ref 0 in
  List.iter
    (function
      | Scenario.Enqueue { tenant; label; _ } ->
        let rank = Qvisor.Transform.apply (transform_of tenant) label in
        let it = { sid = !next_sid; tenant; rank } in
        incr next_sid;
        if !len < sc.Scenario.capacity_pkts then begin
          queue := insert it !queue;
          incr len
        end
        else begin
          match List.rev !queue with
          | [] -> dropped := it.sid :: !dropped
          | worst :: _ ->
            if it.rank >= worst.rank then dropped := it.sid :: !dropped
            else begin
              queue := insert it (drop_last !queue);
              dropped := worst.sid :: !dropped
            end
        end
      | Scenario.Dequeue -> (
        match !queue with
        | [] -> ()
        | x :: rest ->
          queue := rest;
          decr len;
          served := x :: !served))
    sc.Scenario.events;
  {
    served = List.rev !served;
    dropped = List.rev !dropped;
    remaining = !queue;
  }
