(** Injectable scheduler bugs.

    Each fault is a deliberately broken near-PIFO queue discipline used to
    exercise the conformance pipeline end to end: the oracle must flag it,
    and the shrinker must reduce whatever seeded scenario exposed it to a
    few-event reproducer.  They double as regression sentinels for the
    checks themselves — a conformance run that passes a faulty backend is
    a bug in the oracle or the runner, not in the backend. *)

type t =
  | Lifo_ties
      (** equal-rank packets are served in {e reverse} arrival order —
          violates the FIFO tie-break contract of {!Sched.Qdisc} *)
  | Drop_newest
      (** a full queue always tail-drops the arrival, even when it
          out-ranks the current worst — violates the PIFO eviction model *)

val all : t list

val to_string : t -> string
(** The CLI spelling: ["lifo-ties"], ["drop-newest"]. *)

val of_string : string -> (t, string) result

val describe : t -> string

val qdisc : t -> capacity_pkts:int -> Sched.Qdisc.t
(** A PIFO-shaped discipline carrying the fault; name
    ["fault:<to_string>"]. *)
