module IntMap = Map.Make (Int)

type backend_spec = {
  bname : string;
  expect_exact : bool;
  make :
    plan:Qvisor.Synthesizer.plan ->
    capacity_pkts:int ->
    (Sched.Qdisc.t, Qvisor.Error.t) result;
}

let standard_backends () =
  let mk backend_of =
   fun ~plan ~capacity_pkts ->
    Qvisor.Deploy.instantiate ~plan (backend_of capacity_pkts)
  in
  [
    {
      bname = "ideal-pifo";
      expect_exact = true;
      make = mk (fun capacity_pkts -> Qvisor.Deploy.Ideal_pifo { capacity_pkts });
    };
    {
      (* The retired Map-based PIFO, kept as a second exact backend: every
         fleet doubles as a heap-vs-bucket differential, so a regression in
         either implementation shows up as a divergence on this pair. *)
      bname = "pifo-map";
      expect_exact = true;
      make =
        (fun ~plan:_ ~capacity_pkts ->
          Ok (Sched.Pifo_queue.create ~name:"pifo-map" ~capacity_pkts ()));
    };
    {
      bname = "sp-bank-8q";
      expect_exact = false;
      make =
        mk (fun cap ->
            Qvisor.Deploy.Sp_bank { num_queues = 8; queue_capacity_pkts = cap });
    };
    {
      bname = "sp-pifo-8q";
      expect_exact = false;
      make =
        mk (fun cap ->
            Qvisor.Deploy.Sp_pifo { num_queues = 8; queue_capacity_pkts = cap });
    };
    {
      bname = "aifo";
      expect_exact = false;
      make =
        mk (fun cap ->
            Qvisor.Deploy.Aifo
              { capacity_pkts = cap; window = 8 * cap; k = 0.1 });
    };
    {
      bname = "drr-8q";
      expect_exact = false;
      make =
        mk (fun cap ->
            Qvisor.Deploy.Drr_bank
              { num_queues = 8; queue_capacity_pkts = cap; quantum_bytes = 1518 });
    };
    {
      bname = "calendar-32";
      expect_exact = false;
      make =
        mk (fun cap ->
            (* 16-bit joint rank space over 32 buckets. *)
            Qvisor.Deploy.Calendar
              { num_buckets = 32; bucket_width = 2048; capacity_pkts = cap });
    };
  ]

let faulty_backend fault =
  {
    bname = "injected:" ^ Fault.to_string fault;
    expect_exact = true;
    make = (fun ~plan:_ ~capacity_pkts -> Ok (Fault.qdisc fault ~capacity_pkts));
  }

(* ------------------------------------------------------------------ *)
(* Single-scenario replay                                             *)
(* ------------------------------------------------------------------ *)

type replay = {
  served : Oracle.item list;
  dropped : int list;
  dequeues : int;
  inversions : int;
  magnitude_sum : int;
  magnitude_max : int;
  violations : ((string * string) * int) list;
}

type verdict = { matches : bool; divergence : string option }

(* The top-level strict tiers of the plan's policy: tier names rendered in
   policy syntax plus a tenant-id -> tier-index lookup. *)
let tier_info (plan : Qvisor.Synthesizer.plan) =
  let tiers = Qvisor.Policy.strict_tiers plan.Qvisor.Synthesizer.policy in
  let names = Array.of_list (List.map Qvisor.Policy.to_string tiers) in
  let id_of_name =
    List.map
      (fun a ->
        ( a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.name,
          a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.id ))
      plan.Qvisor.Synthesizer.assignments
  in
  let by_tenant = Hashtbl.create 8 in
  List.iteri
    (fun ti tier ->
      List.iter
        (fun name ->
          match List.assoc_opt name id_of_name with
          | Some id -> Hashtbl.replace by_tenant id ti
          | None -> ())
        (Qvisor.Policy.tenant_names tier))
    tiers;
  (names, fun tenant_id -> Hashtbl.find_opt by_tenant tenant_id)

let replay ?(recorder = Engine.Recorder.disabled) ~plan ~qdisc
    (sc : Scenario.t) =
  let pre = Qvisor.Preprocessor.of_plan plan in
  let tier_names, tier_of = tier_info plan in
  let n_tiers = Array.length tier_names in
  let tier_queued = Array.make n_tiers 0 in
  let viol = Array.make_matrix n_tiers n_tiers 0 in
  (* Multiset of queued transformed ranks, for the inversion check. *)
  let queued_ranks = ref IntMap.empty in
  let add_rank r =
    queued_ranks :=
      IntMap.update r
        (function None -> Some 1 | Some c -> Some (c + 1))
        !queued_ranks
  in
  let remove_rank r =
    queued_ranks :=
      IntMap.update r
        (function None -> None | Some 1 -> None | Some c -> Some (c - 1))
        !queued_ranks
  in
  let items = Hashtbl.create 64 in
  (* packet uid -> oracle item *)
  let served = ref [] in
  let dropped = ref [] in
  let dequeues = ref 0 in
  let inversions = ref 0 in
  let mag_sum = ref 0 in
  let mag_max = ref 0 in
  let next_sid = ref 0 in
  let account_removed (it : Oracle.item) =
    remove_rank it.Oracle.rank;
    match tier_of it.Oracle.tenant with
    | Some ti -> tier_queued.(ti) <- tier_queued.(ti) - 1
    | None -> ()
  in
  (* Flight-recorder events carry the scenario sid as uid and the event
     index as the timestamp (conformance replay has no clock), so the
     dump joins with the reproducer's sid vocabulary. *)
  let rec_event ~ei ~kind ~rank_before (it : Oracle.item) =
    Engine.Recorder.record recorder ~time:(float_of_int ei) ~kind
      ~uid:it.Oracle.sid ~link:(-1) ~tenant:it.Oracle.tenant
      ~flow:it.Oracle.tenant ~rank_before ~rank:it.Oracle.rank
  in
  List.iteri
    (fun ei -> function
      | Scenario.Enqueue { tenant; label; size } ->
        let p = Sched.Packet.make ~tenant ~rank:label ~flow:tenant ~size () in
        Qvisor.Preprocessor.process pre p;
        let it =
          { Oracle.sid = !next_sid; tenant; rank = p.Sched.Packet.rank }
        in
        incr next_sid;
        Hashtbl.replace items p.Sched.Packet.uid it;
        rec_event ~ei ~kind:Engine.Recorder.Preprocess ~rank_before:label it;
        rec_event ~ei ~kind:Engine.Recorder.Enqueue ~rank_before:(-1) it;
        let victims = ref [] in
        qdisc.Sched.Qdisc.enqueue_drop p (fun d -> victims := d :: !victims);
        let victims = List.rev !victims in
        if Sched.Qdisc.accepted qdisc p victims then begin
          add_rank it.Oracle.rank;
          match tier_of tenant with
          | Some ti -> tier_queued.(ti) <- tier_queued.(ti) + 1
          | None -> ()
        end;
        List.iter
          (fun (d : Sched.Packet.t) ->
            let dit = Hashtbl.find items d.Sched.Packet.uid in
            dropped := dit.Oracle.sid :: !dropped;
            let arriving = d.Sched.Packet.uid = p.Sched.Packet.uid in
            rec_event ~ei
              ~kind:
                (if arriving then Engine.Recorder.Drop
                 else Engine.Recorder.Evict)
              ~rank_before:(-1) dit;
            (* A dropped packet other than the arrival was evicted from
               the queue: unaccount it. *)
            if not arriving then account_removed dit)
          victims
      | Scenario.Dequeue -> (
        match qdisc.Sched.Qdisc.dequeue () with
        | None -> ()
        | Some p ->
          let it = Hashtbl.find items p.Sched.Packet.uid in
          rec_event ~ei ~kind:Engine.Recorder.Dequeue ~rank_before:(-1) it;
          account_removed it;
          incr dequeues;
          (match IntMap.min_binding_opt !queued_ranks with
          | Some (min_rank, _) when min_rank < it.Oracle.rank ->
            incr inversions;
            let m = it.Oracle.rank - min_rank in
            mag_sum := !mag_sum + m;
            if m > !mag_max then mag_max := m
          | _ -> ());
          (match tier_of it.Oracle.tenant with
          | Some tj ->
            for ti = 0 to tj - 1 do
              if tier_queued.(ti) > 0 then viol.(ti).(tj) <- viol.(ti).(tj) + 1
            done
          | None -> ());
          served := it :: !served))
    sc.Scenario.events;
  let violations =
    List.concat
      (List.init n_tiers (fun i ->
           List.filter_map
             (fun j ->
               if j > i then
                 Some ((tier_names.(i), tier_names.(j)), viol.(i).(j))
               else None)
             (List.init n_tiers Fun.id)))
  in
  {
    served = List.rev !served;
    dropped = List.rev !dropped;
    dequeues = !dequeues;
    inversions = !inversions;
    magnitude_sum = !mag_sum;
    magnitude_max = !mag_max;
    violations;
  }

let sids l = List.map (fun (it : Oracle.item) -> it.Oracle.sid) l

(* First index at which two sid sequences part ways. *)
let first_diff la lb =
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: _, [] -> Some (i, Some x, None)
    | [], y :: _ -> Some (i, None, Some y)
    | x :: ra, y :: rb ->
      if x = y then go (i + 1) ra rb else Some (i, Some x, Some y)
  in
  go 0 la lb

let side = function
  | Some sid -> Printf.sprintf "sid %d" sid
  | None -> "nothing"

let compare_to_oracle (o : Oracle.outcome) (r : replay) =
  match first_diff (sids o.Oracle.served) (sids r.served) with
  | Some (i, a, b) ->
    {
      matches = false;
      divergence =
        Some
          (Printf.sprintf "dequeue #%d: oracle served %s, backend served %s" i
             (side a) (side b));
    }
  | None -> (
    match first_diff o.Oracle.dropped r.dropped with
    | Some (i, a, b) ->
      {
        matches = false;
        divergence =
          Some
            (Printf.sprintf "drop #%d: oracle dropped %s, backend dropped %s"
               i (side a) (side b));
      }
    | None -> { matches = true; divergence = None })

let run_scenario ?(backends = standard_backends ()) (sc : Scenario.t) =
  match Scenario.plan sc with
  | Error e -> Error e
  | Ok plan ->
    let oracle = Oracle.run ~plan sc in
    let rec go acc = function
      | [] -> Ok (oracle, List.rev acc)
      | b :: rest -> (
        match b.make ~plan ~capacity_pkts:sc.Scenario.capacity_pkts with
        | Error e -> Error e
        | Ok qdisc ->
          let r = replay ~plan ~qdisc sc in
          go ((b, r, compare_to_oracle oracle r) :: acc) rest)
    in
    go [] backends

let fails_oracle ~backend sc =
  match Scenario.plan sc with
  | Error _ -> false
  | Ok plan -> (
    match backend.make ~plan ~capacity_pkts:sc.Scenario.capacity_pkts with
    | Error _ -> false
    | Ok qdisc ->
      let oracle = Oracle.run ~plan sc in
      not (compare_to_oracle oracle (replay ~plan ~qdisc sc)).matches)

(* ------------------------------------------------------------------ *)
(* Seeded fleets                                                      *)
(* ------------------------------------------------------------------ *)

type backend_stats = {
  backend : string;
  expect_exact : bool;
  cases : int;
  exact_cases : int;
  dequeues : int;
  inversions : int;
  magnitude_sum : int;
  magnitude_max : int;
  strict_violations : int;
}

type failure = {
  case_index : int;
  case_seed : int;
  backend : string;
  divergence : string;
}

type run_result = {
  seed : int;
  cases : int;
  total_events : int;
  total_enqueues : int;
  stats : backend_stats list;
  failures : failure list;
  errors : (int * string) list;
}

(* What a worker domain sends back per case: plain data, no closures. *)
type case_row = {
  row_exact : bool;
  row_dequeues : int;
  row_inversions : int;
  row_mag_sum : int;
  row_mag_max : int;
  row_violations : int;
  row_divergence : string option;
}

type case_summary = {
  cs_index : int;
  cs_seed : int;
  cs_events : int;
  cs_enqueues : int;
  cs_rows : case_row list;  (** aligned with the backend list *)
  cs_error : string option;
  cs_profile : Engine.Span.t;  (** the worker's private span profiler *)
}

let run_cases ?(jobs = 1) ?telemetry ?(profiler = Engine.Span.disabled)
    ?(backends = standard_backends ()) ~seed ~cases () =
  let per_case i =
    (* A private profiler per case, merged below in case order — the
       merged span structure is independent of [jobs]. *)
    let prof =
      if Engine.Span.is_enabled profiler then Engine.Span.create ()
      else Engine.Span.disabled
    in
    Engine.Span.with_ prof ~name:"conformance.case" @@ fun () ->
    let cseed = Engine.Rng.derive ~seed i in
    let sc =
      Engine.Span.with_ prof ~name:"conformance.generate" @@ fun () ->
      Scenario.generate ~seed:cseed
    in
    let base =
      {
        cs_index = i;
        cs_seed = cseed;
        cs_events = Scenario.num_events sc;
        cs_enqueues = Scenario.num_enqueues sc;
        cs_rows = [];
        cs_error = None;
        cs_profile = prof;
      }
    in
    match
      Engine.Span.with_ prof ~name:"conformance.verify" @@ fun () ->
      run_scenario ~backends sc
    with
    | Error e -> { base with cs_error = Some (Qvisor.Error.to_string e) }
    | Ok (_oracle, rows) ->
      {
        base with
        cs_rows =
          List.map
            (fun (_b, (r : replay), (v : verdict)) ->
              {
                row_exact = v.matches;
                row_dequeues = r.dequeues;
                row_inversions = r.inversions;
                row_mag_sum = r.magnitude_sum;
                row_mag_max = r.magnitude_max;
                row_violations =
                  List.fold_left (fun a (_, c) -> a + c) 0 r.violations;
                row_divergence = v.divergence;
              })
            rows;
      }
  in
  let summaries =
    Engine.Parallel.map ~jobs:(max 1 jobs) per_case (List.init cases Fun.id)
  in
  List.iter
    (fun cs ->
      Engine.Span.merge_into ~into:profiler ~tid:(cs.cs_index + 1)
        cs.cs_profile)
    summaries;
  let n_backends = List.length backends in
  let acc =
    Array.of_list
      (List.map
         (fun b ->
           {
             backend = b.bname;
             expect_exact = b.expect_exact;
             cases = 0;
             exact_cases = 0;
             dequeues = 0;
             inversions = 0;
             magnitude_sum = 0;
             magnitude_max = 0;
             strict_violations = 0;
           })
         backends)
  in
  let backend_arr = Array.of_list backends in
  let total_events = ref 0 in
  let total_enqueues = ref 0 in
  let failures = ref [] in
  let errors = ref [] in
  List.iter
    (fun cs ->
      total_events := !total_events + cs.cs_events;
      total_enqueues := !total_enqueues + cs.cs_enqueues;
      match cs.cs_error with
      | Some e -> errors := (cs.cs_index, e) :: !errors
      | None ->
        List.iteri
          (fun bi row ->
            if bi < n_backends then begin
              let s = acc.(bi) in
              acc.(bi) <-
                {
                  s with
                  cases = s.cases + 1;
                  exact_cases = (s.exact_cases + if row.row_exact then 1 else 0);
                  dequeues = s.dequeues + row.row_dequeues;
                  inversions = s.inversions + row.row_inversions;
                  magnitude_sum = s.magnitude_sum + row.row_mag_sum;
                  magnitude_max = max s.magnitude_max row.row_mag_max;
                  strict_violations = s.strict_violations + row.row_violations;
                };
              if backend_arr.(bi).expect_exact && not row.row_exact then
                failures :=
                  {
                    case_index = cs.cs_index;
                    case_seed = cs.cs_seed;
                    backend = backend_arr.(bi).bname;
                    divergence =
                      Option.value row.row_divergence ~default:"divergence";
                  }
                  :: !failures
            end)
          cs.cs_rows)
    summaries;
  let stats = Array.to_list acc in
  (match telemetry with
  | Some tel when Engine.Telemetry.is_enabled tel ->
    Engine.Telemetry.Counter.add (Engine.Telemetry.counter tel "conformance.cases") cases;
    Engine.Telemetry.Counter.add
      (Engine.Telemetry.counter tel "conformance.events")
      !total_events;
    Engine.Telemetry.Counter.add
      (Engine.Telemetry.counter tel "conformance.dequeues")
      (List.fold_left (fun a s -> a + s.dequeues) 0 stats);
    Engine.Telemetry.Counter.add
      (Engine.Telemetry.counter tel "conformance.inversions")
      (List.fold_left (fun a s -> a + s.inversions) 0 stats);
    Engine.Telemetry.Counter.add
      (Engine.Telemetry.counter tel "conformance.mismatches")
      (List.length !failures)
  | Some _ | None -> ());
  {
    seed;
    cases;
    total_events = !total_events;
    total_enqueues = !total_enqueues;
    stats;
    failures = List.rev !failures;
    errors = List.rev !errors;
  }

let pp_run ppf r =
  Format.fprintf ppf
    "conformance: seed %d, %d cases, %d events (%d enqueues)@," r.seed r.cases
    r.total_events r.total_enqueues;
  Format.fprintf ppf "%-20s %6s %6s %9s %11s %9s %9s %8s %12s@," "backend"
    "cases" "exact" "dequeues" "inversions" "inv/deq" "mean-mag" "max-mag"
    "strict-viol";
  List.iter
    (fun s ->
      let inv_per_deq =
        if s.dequeues = 0 then 0.
        else float_of_int s.inversions /. float_of_int s.dequeues
      in
      let mean_mag =
        if s.inversions = 0 then 0.
        else float_of_int s.magnitude_sum /. float_of_int s.inversions
      in
      Format.fprintf ppf "%-20s %6d %6d %9d %11d %9.4f %9.1f %8d %12d@,"
        s.backend s.cases s.exact_cases s.dequeues s.inversions inv_per_deq
        mean_mag s.magnitude_max s.strict_violations)
    r.stats;
  (match r.errors with
  | [] -> ()
  | errs ->
    Format.fprintf ppf "errors: %d case(s) failed to synthesize/deploy@,"
      (List.length errs));
  match r.failures with
  | [] ->
    Format.fprintf ppf
      "oracle conformance: all exact backends matched on every case@,"
  | fs ->
    Format.fprintf ppf "oracle conformance: %d DIVERGENCE(S)@,"
      (List.length fs)
