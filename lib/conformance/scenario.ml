module J = Engine.Json

let ( let* ) = Result.bind

type event =
  | Enqueue of { tenant : int; label : int; size : int }
  | Dequeue

type t = {
  seed : int;
  tenants : Qvisor.Tenant.t list;
  policy : Qvisor.Policy.t;
  config : Qvisor.Synthesizer.config;
  capacity_pkts : int;
  events : event list;
}

let num_events t = List.length t.events

let num_enqueues t =
  List.fold_left
    (fun n -> function Enqueue _ -> n + 1 | Dequeue -> n)
    0 t.events

let plan t =
  Qvisor.Synthesizer.synthesize ~config:t.config ~tenants:t.tenants
    ~policy:t.policy ()

(* ------------------------------------------------------------------ *)
(* Generation                                                         *)
(* ------------------------------------------------------------------ *)

let algorithms = [| "pfabric"; "edf"; "stfq"; "fifo"; "lstf"; "custom" |]

let packet_sizes = [| 64; 256; 512; 1024; 1500 |]

let weights = [| 0.5; 1.0; 1.0; 2.0; 4.0 |]

let prefer_biases = [| 0.25; 0.5; 0.75 |]

(* Split [names] into [k] non-empty groups.  The input is pre-shuffled, so
   pinning the first [k] elements to distinct groups costs no entropy. *)
let partition rng k names =
  let groups = Array.make k [] in
  List.iteri
    (fun i name ->
      let g = if i < k then i else Engine.Rng.int_range rng ~lo:0 ~hi:(k - 1) in
      groups.(g) <- name :: groups.(g))
    names;
  Array.to_list (Array.map List.rev groups)

(* A random policy over the full [>>]/[>]/[+] grammar, including the
   parenthesized-nesting extension: split the names into 2-3 groups,
   combine them with a random operator, recurse into each group. *)
let rec gen_policy rng names =
  match names with
  | [] -> invalid_arg "Scenario.gen_policy: no names"
  | [ n ] -> Qvisor.Policy.Tenant n
  | _ ->
    let k = Engine.Rng.int_range rng ~lo:2 ~hi:(min 3 (List.length names)) in
    let parts = List.map (gen_policy rng) (partition rng k names) in
    (match Engine.Rng.int_range rng ~lo:0 ~hi:2 with
    | 0 -> Qvisor.Policy.Strict parts
    | 1 -> Qvisor.Policy.Prefer parts
    | _ -> Qvisor.Policy.Share parts)

let generate ~seed =
  let rng = Engine.Rng.create ~seed in
  let n = Engine.Rng.int_range rng ~lo:2 ~hi:5 in
  let tenants =
    List.init n (fun i ->
        let rank_lo = Engine.Rng.int_range rng ~lo:0 ~hi:256 in
        let width = 1 lsl Engine.Rng.int_range rng ~lo:3 ~hi:14 in
        Qvisor.Tenant.make
          ~algorithm:(Engine.Rng.choice rng algorithms)
          ~rank_lo ~rank_hi:(rank_lo + width - 1)
          ~weight:(Engine.Rng.choice rng weights)
          ~id:i
          ~name:(Printf.sprintf "T%d" i)
          ())
  in
  let names = Array.of_list (List.map (fun t -> t.Qvisor.Tenant.name) tenants) in
  Engine.Rng.shuffle rng names;
  let policy = gen_policy rng (Array.to_list names) in
  let config =
    {
      Qvisor.Synthesizer.default_config with
      Qvisor.Synthesizer.levels =
        (if Engine.Rng.bool rng then
           Some (1 lsl Engine.Rng.int_range rng ~lo:2 ~hi:8)
         else None);
      prefer_bias = Engine.Rng.choice rng prefer_biases;
    }
  in
  let capacity_pkts = Engine.Rng.int_range rng ~lo:4 ~hi:64 in
  let target = Engine.Rng.int_range rng ~lo:16 ~hi:192 in
  let tenant_arr = Array.of_list tenants in
  let events = ref [] in
  let count = ref 0 in
  let depth = ref 0 in
  (* Estimated occupancy; an upper bound since it ignores drops. *)
  let emit e = events := e :: !events; incr count in
  let enqueue_from t =
    emit
      (Enqueue
         {
           tenant = t.Qvisor.Tenant.id;
           label =
             Engine.Rng.int_range rng ~lo:t.Qvisor.Tenant.rank_lo
               ~hi:t.Qvisor.Tenant.rank_hi;
           size = Engine.Rng.choice rng packet_sizes;
         });
    incr depth
  in
  let enqueue_one () =
    (* A sliver of traffic from an undeclared tenant id exercises the
       plan's fallback transformation. *)
    if Engine.Rng.float rng < 0.03 then begin
      emit
        (Enqueue
           {
             tenant = n;
             label = Engine.Rng.int_range rng ~lo:0 ~hi:255;
             size = Engine.Rng.choice rng packet_sizes;
           });
      incr depth
    end
    else enqueue_from (Engine.Rng.choice rng tenant_arr)
  in
  while !count < target do
    match Engine.Rng.int_range rng ~lo:0 ~hi:99 with
    | r when r < 35 -> enqueue_one ()
    | r when r < 60 ->
      (* Burst: one tenant floods 2-12 packets back to back — the
         capacity-pressure case (evictions, AIFO admission refusals). *)
      let t = Engine.Rng.choice rng tenant_arr in
      let b = Engine.Rng.int_range rng ~lo:2 ~hi:12 in
      for _ = 1 to b do
        enqueue_from t
      done
    | r when r < 85 ->
      let d = Engine.Rng.int_range rng ~lo:1 ~hi:4 in
      for _ = 1 to d do
        emit Dequeue
      done;
      depth := max 0 (!depth - d)
    | _ ->
      (* Drain run: serve out about half of what is queued. *)
      let d = max 1 (!depth / 2) in
      for _ = 1 to d do
        emit Dequeue
      done;
      depth := max 0 (!depth - d)
  done;
  { seed; tenants; policy; config; capacity_pkts; events = List.rev !events }

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let event_to_json = function
  | Enqueue { tenant; label; size } ->
    J.Obj
      [
        ("ev", J.String "enq");
        ("tenant", J.Number (float_of_int tenant));
        ("label", J.Number (float_of_int label));
        ("size", J.Number (float_of_int size));
      ]
  | Dequeue -> J.Obj [ ("ev", J.String "deq") ]

let to_json t =
  J.Obj
    [
      ("version", J.Number 1.);
      (* Seeds are 63-bit (Rng.derive output); a JSON number would round
         through a float and lose low bits, so carry them as a string. *)
      ("seed", J.String (string_of_int t.seed));
      ("spec", Qvisor.Serialize.spec_to_json ~tenants:t.tenants ~policy:t.policy);
      ("config", Qvisor.Serialize.config_to_json t.config);
      ("capacity_pkts", J.Number (float_of_int t.capacity_pkts));
      ("events", J.List (List.map event_to_json t.events));
    ]

let field name json ~conv ~what =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None ->
    Error
      (Qvisor.Error.Config
         (Printf.sprintf "missing or ill-typed field %S in %s" name what))

let event_of_json json =
  let* ev = field "ev" json ~conv:J.to_str ~what:"event" in
  match ev with
  | "deq" -> Ok Dequeue
  | "enq" ->
    let* tenant = field "tenant" json ~conv:J.to_int ~what:"event" in
    let* label = field "label" json ~conv:J.to_int ~what:"event" in
    let* size = field "size" json ~conv:J.to_int ~what:"event" in
    Ok (Enqueue { tenant; label; size })
  | other ->
    Error (Qvisor.Error.Config (Printf.sprintf "unknown event kind %S" other))

let of_json json =
  let* seed =
    field "seed" json
      ~conv:(fun j -> Option.bind (J.to_str j) int_of_string_opt)
      ~what:"scenario"
  in
  let* spec =
    match J.member "spec" json with
    | Some s -> Qvisor.Serialize.spec_of_json s
    | None -> Error (Qvisor.Error.Config "missing field \"spec\" in scenario")
  in
  let tenants, policy = spec in
  let* config =
    match J.member "config" json with
    | Some c -> Qvisor.Serialize.config_of_json c
    | None -> Error (Qvisor.Error.Config "missing field \"config\" in scenario")
  in
  let* capacity_pkts =
    field "capacity_pkts" json ~conv:J.to_int ~what:"scenario"
  in
  let* event_items = field "events" json ~conv:J.to_list ~what:"scenario" in
  let* events =
    List.fold_right
      (fun item acc ->
        let* acc = acc in
        let* e = event_of_json item in
        Ok (e :: acc))
      event_items (Ok [])
  in
  if capacity_pkts <= 0 then
    Error (Qvisor.Error.Config "scenario capacity_pkts <= 0")
  else Ok { seed; tenants; policy; config; capacity_pkts; events }

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf
    "scenario[seed=%d tenants=%d policy=%s levels=%s cap=%d events=%d (%d enq)]"
    t.seed (List.length t.tenants)
    (Qvisor.Policy.to_string t.policy)
    (match t.config.Qvisor.Synthesizer.levels with
    | None -> "full"
    | Some l -> string_of_int l)
    t.capacity_pkts (num_events t) (num_enqueues t)
