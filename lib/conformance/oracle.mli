(** The ideal joint-PIFO reference model.

    The oracle executes a scenario's event sequence against {e exact}
    PIFO semantics over transformed ranks: packets are served in
    non-decreasing rank order with FIFO tie-break on arrival id, and the
    drop/eviction model is identical to {!Sched.Pifo_queue} (tail-drop an
    arrival no better than the current worst, otherwise evict the
    worst-ranked most-recently-arrived packet).  Ranks come straight from
    {!Qvisor.Synthesizer.transform_of} + {!Qvisor.Transform.apply} — a
    deliberately independent path from the pre-processor's compiled
    match-action table, so the differential runner also covers table
    compilation.

    The implementation is a plain sorted list with linear insertion:
    obviously correct over the heap/map-based production queues it
    judges, and fast enough for conformance-sized scenarios. *)

type item = {
  sid : int;
      (** scenario-local arrival index (0-based over enqueue events) —
          the arrival-order tie-breaker, stable across replays *)
  tenant : int;
  rank : int;  (** the transformed (joint) rank *)
}

type outcome = {
  served : item list;  (** ground-truth dequeue order *)
  dropped : int list;  (** sids dropped (tail-drop or eviction), in order *)
  remaining : item list;  (** still queued when the events ran out *)
}

val run : plan:Qvisor.Synthesizer.plan -> Scenario.t -> outcome
