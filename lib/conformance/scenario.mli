(** Seeded multi-tenant workload scenarios for conformance testing.

    A scenario is everything the differential runner needs to replay one
    case deterministically: a random operator specification (tenants with
    random rank ranges plus a random policy drawn from the [>>]/[>]/[+]
    grammar, including nested groups), a synthesizer configuration, a
    queue capacity, and an interleaved enqueue/dequeue event sequence with
    bursts and capacity pressure.  Every scenario is a pure function of
    its seed ({!Engine.Rng} splitmix64 streams), so a one-line seed is a
    complete reproducer; failing cases additionally serialize to JSON
    ({!to_json}) for replay after the generator evolves. *)

type event =
  | Enqueue of { tenant : int; label : int; size : int }
      (** one packet arrives carrying the tenant's raw rank label *)
  | Dequeue  (** the port serves one packet (a no-op on an empty queue) *)

type t = {
  seed : int;  (** the seed this scenario was generated from (provenance) *)
  tenants : Qvisor.Tenant.t list;
  policy : Qvisor.Policy.t;
  config : Qvisor.Synthesizer.config;
  capacity_pkts : int;  (** queue capacity shared by oracle and backends *)
  events : event list;
}

val generate : seed:int -> t
(** Deterministically generate one scenario: 2–5 tenants with random
    algorithms, rank-range widths from 8 to 16384 and random spec bands, a
    random (possibly nested) policy over them, optional rank quantization,
    a small capacity (4–64 packets, so eviction pressure is common), and
    16–192 events mixing single enqueues, tenant bursts (2–12 packets),
    single dequeues and drain runs; about 3% of enqueues come from an
    undeclared tenant id to exercise the fallback transformation. *)

val num_events : t -> int

val num_enqueues : t -> int

val plan : t -> (Qvisor.Synthesizer.plan, Qvisor.Error.t) result
(** Synthesize the joint scheduling plan for the scenario's spec. *)

val to_json : t -> Engine.Json.t
(** Reproducer form: the spec (via {!Qvisor.Serialize.spec_to_json}), the
    synthesizer config, the capacity, and the event list. *)

val of_json : Engine.Json.t -> (t, Qvisor.Error.t) result

val equal : t -> t -> bool
(** Structural equality (used by generator-determinism tests). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: tenants, policy, capacity, event counts. *)
