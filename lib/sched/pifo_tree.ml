(* Specification trees (what the user builds)... *)

type tree =
  | Leaf of (Packet.t -> int)
  | Strict of tree list
  | Wfq of (tree * float) list

let leaf ?rank_of () =
  let rank_of = Option.value rank_of ~default:(fun p -> p.Packet.rank) in
  Leaf rank_of

let strict children =
  if children = [] then invalid_arg "Pifo_tree.strict: no children";
  Strict children

let wfq children =
  if children = [] then invalid_arg "Pifo_tree.wfq: no children";
  List.iter
    (fun (_, w) -> if w <= 0. then invalid_arg "Pifo_tree.wfq: weight <= 0")
    children;
  Wfq children

let rec num_leaves = function
  | Leaf _ -> 1
  | Strict children -> List.fold_left (fun a c -> a + num_leaves c) 0 children
  | Wfq children ->
    List.fold_left (fun a (c, _) -> a + num_leaves c) 0 children

(* ... and the compiled runtime representation: a mini-PIFO per node.
   Each mini-PIFO is a map keyed by (rank, arrival seq) so equal ranks
   serve FIFO. *)

module Key = struct
  type t = int * int

  let compare (r1, s1) (r2, s2) =
    let c = compare r1 r2 in
    if c <> 0 then c else compare s1 s2
end

module PMap = Map.Make (Key)

type 'a mini_pifo = { mutable store : 'a PMap.t; mutable seq : int }

let mini_create () = { store = PMap.empty; seq = 0 }

let mini_push mp ~rank v =
  mp.store <- PMap.add (rank, mp.seq) v mp.store;
  mp.seq <- mp.seq + 1

let mini_pop mp =
  match PMap.min_binding_opt mp.store with
  | None -> None
  | Some (((rank, _) as key), v) ->
    mp.store <- PMap.remove key mp.store;
    Some (rank, v)

type cnode =
  | CLeaf of { rank_of : Packet.t -> int; pifo : Packet.t mini_pifo }
  | CInner of {
      children : cnode array;
      child_rank : int -> Packet.t -> int;
          (* rank of child [i]'s entry when packet [p] descends *)
      on_pop : int -> unit; (* virtual-clock feedback (WFQ) *)
      pifo : int mini_pifo; (* holds child indices *)
    }

(* Compile the spec tree, assigning leaf indices depth-first, and record
   for each leaf the root-to-leaf path as (node, child-index) pairs. *)
let compile tree =
  let paths = ref [] in
  let rec build prefix = function
    | Leaf rank_of ->
      let node = CLeaf { rank_of; pifo = mini_create () } in
      paths := List.rev prefix :: !paths;
      (node, fun _ -> ())
    | Strict children ->
      build_inner prefix (Array.of_list children)
        ~child_rank:(fun i _ -> i)
        ~on_pop:(fun _ -> ())
    | Wfq children ->
      let arr = Array.of_list children in
      let weights = Array.map snd arr in
      let finish = Array.make (Array.length arr) 0. in
      let vt = ref 0. in
      let child_rank i (p : Packet.t) =
        let start = Float.max !vt finish.(i) in
        finish.(i) <- start +. (float_of_int p.Packet.size /. weights.(i));
        int_of_float start
      in
      let on_pop rank = vt := Float.max !vt (float_of_int rank) in
      build_inner prefix (Array.map fst arr) ~child_rank ~on_pop
  and build_inner prefix children ~child_rank ~on_pop =
    let pifo = mini_create () in
    let placeholder = [||] in
    let rec_node = ref (CInner { children = placeholder; child_rank; on_pop; pifo }) in
    (* Build children with path entries referring to this node; the node
       record is created after the children, so thread a forward cell. *)
    let compiled =
      Array.mapi
        (fun i child -> fst (build ((rec_node, i) :: prefix) child))
        children
    in
    let node = CInner { children = compiled; child_rank; on_pop; pifo } in
    rec_node := node;
    (node, fun _ -> ())
  in
  let root, _ = build [] tree in
  (* Paths were collected with forward cells; resolve them now. *)
  let resolved =
    List.rev_map (List.map (fun (cell, i) -> (!cell, i))) !paths
  in
  (root, Array.of_list resolved)

let rec pop_node = function
  | CLeaf l -> (
    match mini_pop l.pifo with
    | None -> None
    | Some (_, p) -> Some p)
  | CInner n -> (
    match mini_pop n.pifo with
    | None -> None
    | Some (rank, child_index) ->
      n.on_pop rank;
      pop_node n.children.(child_index))

let to_qdisc ?(name = "pifo-tree") ~classify ~capacity_pkts tree =
  if capacity_pkts <= 0 then invalid_arg "Pifo_tree.to_qdisc: capacity <= 0";
  let root, paths = compile tree in
  let leaves = Array.length paths in
  let count = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let enqueue_drop (p : Packet.t) on_drop =
    if !count >= capacity_pkts then begin
      incr drops;
      on_drop p
    end
    else begin
      let leaf_index = max 0 (min (leaves - 1) (classify p)) in
      List.iter
        (fun (node, child_index) ->
          match node with
          | CInner n ->
            mini_push n.pifo ~rank:(n.child_rank child_index p) child_index
          | CLeaf _ -> assert false)
        paths.(leaf_index);
      (* The leaf itself is the last node on the path's spine; find it by
         walking from the root via the recorded child indices. *)
      let rec leaf_of node = function
        | [] -> node
        | (_, i) :: rest -> (
          match node with
          | CInner n -> leaf_of n.children.(i) rest
          | CLeaf _ -> node)
      in
      (match leaf_of root paths.(leaf_index) with
      | CLeaf l -> mini_push l.pifo ~rank:(l.rank_of p) p
      | CInner _ -> assert false);
      incr count;
      bytes := !bytes + p.Packet.size
    end
  in
  let dequeue () =
    match pop_node root with
    | None -> None
    | Some p ->
      decr count;
      bytes := !bytes - p.Packet.size;
      Some p
  in
  let peek () =
    (* Non-destructive peek is not required by the fabric; emulate by
       inspecting the root chain without popping. *)
    let rec peek_node = function
      | CLeaf l -> Option.map snd (PMap.min_binding_opt l.pifo.store)
      | CInner n -> (
        match PMap.min_binding_opt n.pifo.store with
        | None -> None
        | Some (_, child_index) -> peek_node n.children.(child_index))
    in
    peek_node root
  in
  Qdisc.make ~name ~enqueue_drop ~dequeue ~peek
    ~length:(fun () -> !count)
    ~bytes:(fun () -> !bytes)
    ~drops:(fun () -> !drops)
