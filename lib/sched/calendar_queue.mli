(** Calendar queue scheduling (Sharma et al., NSDI 2020: "Programmable
    Calendar Queues") — approximating rank order with a ring of FIFO
    buckets that rotate as time (rank space) advances.

    A packet of rank [r] lands in the bucket covering
    [\[r / width\]] {e days} from now.  Dequeue serves the current day
    until it is empty, then rotates.  Unlike a PIFO, ranks within one
    bucket are served FIFO — the fidelity/cost trade-off programmable
    calendar queues make.  A rank further than [num_buckets * width]
    away parks in a sorted overflow stage and refills the ring as the
    day advances, so a far-future rank is never served ahead of a nearer
    one (the former wrap-around epoch inversion). *)

val create :
  ?name:string ->
  num_buckets:int ->
  bucket_width:int ->
  capacity_pkts:int ->
  unit ->
  Qdisc.t
(** @raise Invalid_argument on non-positive parameters. *)

val create_with_day :
  ?name:string ->
  num_buckets:int ->
  bucket_width:int ->
  capacity_pkts:int ->
  unit ->
  Qdisc.t * (unit -> int)
(** Like {!create} but also exposes the current day (the rank floor the
    ring has rotated to), for tests. *)
