(** Packets as seen by schedulers and the network simulator.

    A packet carries the two labels QVISOR requires — the tenant identifier
    and the rank (§3.1 of the paper) — plus the flow metadata the rank
    functions need (remaining flow bytes for pFabric/SRPT, absolute deadline
    for EDF) and bookkeeping for the simulator (ids, size, timestamps). *)

type kind = Data | Ack

type t = {
  uid : int;  (** globally unique packet id *)
  kind : kind;  (** payload-bearing data packet or acknowledgement *)
  flow : int;  (** flow identifier *)
  tenant : int;  (** tenant identifier (0-based) *)
  src : int;  (** source host id *)
  dst : int;  (** destination host id *)
  size : int;  (** wire size in bytes, headers included *)
  seq : int;  (** byte offset of this packet's payload within the flow *)
  payload : int;  (** payload bytes *)
  remaining : int;
      (** bytes remaining in the flow when this packet was sent (including
          this packet) — the pFabric rank input *)
  deadline : float;
      (** absolute deadline in seconds ([infinity] when the flow has none)
          — the EDF rank input *)
  created_at : float;  (** send timestamp at the source host *)
  mutable label : int;
      (** the tenant's {e rank label} — written once by the tenant's rank
          function at the end host and carried unchanged through the
          network (§3.1's packet label) *)
  mutable rank : int;
      (** the {e scheduling} rank the queue disciplines order by;
          initially the label, rewritten (from the label, idempotently)
          by QVISOR's pre-processor at each QVISOR hop *)
  mutable enqueued_at : float;  (** last enqueue timestamp (for latency) *)
}

val make :
  ?kind:kind ->
  ?tenant:int ->
  ?src:int ->
  ?dst:int ->
  ?seq:int ->
  ?payload:int ->
  ?remaining:int ->
  ?deadline:float ->
  ?created_at:float ->
  ?rank:int ->
  flow:int ->
  size:int ->
  unit ->
  t
(** Create a packet with a fresh [uid].  [kind] defaults to [Data],
    [payload] to [size - header_bytes] (clamped at 0), [remaining] to
    [payload], [deadline] to [infinity], other fields to 0.  [rank]
    initializes both the label and the scheduling rank. *)

val header_bytes : int
(** Fixed per-packet header overhead (Ethernet+IP+TCP ≈ 58 bytes, the
    value Netbench uses). *)

val compare_rank : t -> t -> int
(** Order by rank, then by [uid] (arrival order) for stability. *)

val pp : Format.formatter -> t -> unit

val reset_uid_counter : unit -> unit
(** Reset the calling domain's uid counter — for deterministic unit
    tests only.  The counter is domain-local so that independent
    simulations on parallel worker domains allocate uids (the rank
    tie-breaker) deterministically. *)
