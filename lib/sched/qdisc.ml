type t = {
  name : string;
  enqueue_drop : Packet.t -> (Packet.t -> unit) -> unit;
  enqueue : Packet.t -> Packet.t list;
  dequeue : unit -> Packet.t option;
  peek : unit -> Packet.t option;
  length : unit -> int;
  bytes : unit -> int;
  drops : unit -> int;
}

let make ~name ~enqueue_drop ~dequeue ~peek ~length ~bytes ~drops =
  let enqueue p =
    let dropped = ref [] in
    enqueue_drop p (fun d -> dropped := d :: !dropped);
    List.rev !dropped
  in
  { name; enqueue_drop; enqueue; dequeue; peek; length; bytes; drops }

let accepted _q p dropped = not (List.exists (fun d -> d.Packet.uid = p.Packet.uid) dropped)

let drain q =
  let rec loop acc =
    match q.dequeue () with None -> List.rev acc | Some p -> loop (p :: acc)
  in
  loop []

let pp ppf q =
  Format.fprintf ppf "%s[len=%d bytes=%d drops=%d]" q.name (q.length ())
    (q.bytes ()) (q.drops ())
