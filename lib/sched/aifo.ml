let create ?(name = "aifo") ?window ?(k = 0.1) ~capacity_pkts () =
  if capacity_pkts <= 0 then invalid_arg "Aifo.create: capacity <= 0";
  if k < 0. || k >= 1. then invalid_arg "Aifo.create: k outside [0,1)";
  let window_size =
    match window with
    | Some w when w <= 0 -> invalid_arg "Aifo.create: window <= 0"
    | Some w -> w
    | None -> 8 * capacity_pkts
  in
  let q : Packet.t Queue.t = Queue.create () in
  (* Circular buffer of recent ranks (admitted or not), as in the paper's
     data-plane design. *)
  let ranks = Array.make window_size 0 in
  let filled = ref 0 in
  let cursor = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let observe r =
    ranks.(!cursor) <- r;
    cursor := (!cursor + 1) mod window_size;
    if !filled < window_size then incr filled
  in
  let quantile_below r =
    if !filled = 0 then 0.
    else begin
      let below = ref 0 in
      for i = 0 to !filled - 1 do
        if ranks.(i) < r then incr below
      done;
      float_of_int !below /. float_of_int !filled
    end
  in
  let enqueue_drop p on_drop =
    let r = p.Packet.rank in
    let occupancy = Queue.length q in
    let headroom =
      float_of_int (capacity_pkts - occupancy) /. float_of_int capacity_pkts
    in
    let threshold = headroom /. (1. -. k) in
    let admit = occupancy < capacity_pkts && quantile_below r <= threshold in
    observe r;
    if admit then begin
      Queue.push p q;
      bytes := !bytes + p.Packet.size
    end
    else begin
      incr drops;
      on_drop p
    end
  in
  let dequeue () =
    match Queue.take_opt q with
    | None -> None
    | Some p ->
      bytes := !bytes - p.Packet.size;
      Some p
  in
  Qdisc.make ~name ~enqueue_drop ~dequeue
    ~peek:(fun () -> Queue.peek_opt q)
    ~length:(fun () -> Queue.length q)
    ~bytes:(fun () -> !bytes)
    ~drops:(fun () -> !drops)
