(* Packets are kept in a map keyed by (rank, uid).  Uids increase with
   arrival order, so the minimum binding is the next packet to serve (rank
   order, FIFO among equals) and the maximum binding is the eviction victim
   (worst rank, most recent arrival among equals). *)

module Key = struct
  type t = int * int

  let compare (r1, u1) (r2, u2) =
    let c = compare r1 r2 in
    if c <> 0 then c else compare u1 u2
end

module PMap = Map.Make (Key)

let create ?(name = "pifo") ~capacity_pkts () =
  if capacity_pkts <= 0 then invalid_arg "Pifo_queue.create: capacity <= 0";
  let store = ref PMap.empty in
  let count = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let insert p =
    store := PMap.add (p.Packet.rank, p.Packet.uid) p !store;
    incr count;
    bytes := !bytes + p.Packet.size
  in
  let remove key p =
    store := PMap.remove key !store;
    decr count;
    bytes := !bytes - p.Packet.size
  in
  let enqueue_drop p on_drop =
    if !count < capacity_pkts then insert p
    else begin
      let (worst_key, worst) = PMap.max_binding !store in
      if p.Packet.rank >= worst.Packet.rank then begin
        (* The arrival is no better than the current worst: tail-drop it. *)
        incr drops;
        on_drop p
      end
      else begin
        remove worst_key worst;
        insert p;
        incr drops;
        on_drop worst
      end
    end
  in
  let dequeue () =
    match PMap.min_binding_opt !store with
    | None -> None
    | Some (key, p) ->
      remove key p;
      Some p
  in
  let peek () = Option.map snd (PMap.min_binding_opt !store) in
  Qdisc.make ~name ~enqueue_drop ~dequeue ~peek
    ~length:(fun () -> !count)
    ~bytes:(fun () -> !bytes)
    ~drops:(fun () -> !drops)
