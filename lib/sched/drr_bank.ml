let create ?(name = "drr-bank") ?weights ~num_queues ~queue_capacity_pkts
    ~quantum_bytes ~classify () =
  if num_queues <= 0 then invalid_arg "Drr_bank.create: num_queues <= 0";
  if queue_capacity_pkts <= 0 then invalid_arg "Drr_bank.create: capacity <= 0";
  if quantum_bytes <= 0 then invalid_arg "Drr_bank.create: quantum <= 0";
  let weights =
    match weights with
    | None -> Array.make num_queues 1.0
    | Some w ->
      if Array.length w <> num_queues then
        invalid_arg "Drr_bank.create: weights length mismatch";
      Array.iter
        (fun x -> if x <= 0. then invalid_arg "Drr_bank.create: weight <= 0")
        w;
      w
  in
  let queues = Array.init num_queues (fun _ -> Queue.create ()) in
  let deficit = Array.make num_queues 0. in
  (* Whether the queue has received its quantum in the current visit. *)
  let credited = Array.make num_queues false in
  let current = ref 0 in
  let count = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let enqueue_drop p on_drop =
    let i = max 0 (min (num_queues - 1) (classify p)) in
    if Queue.length queues.(i) >= queue_capacity_pkts then begin
      incr drops;
      on_drop p
    end
    else begin
      Queue.push p queues.(i);
      incr count;
      bytes := !bytes + p.Packet.size
    end
  in
  let advance () =
    credited.(!current) <- false;
    current := (!current + 1) mod num_queues
  in
  let dequeue () =
    if !count = 0 then None
    else begin
      (* Bounded by the rounds needed for the deficit to cover the head
         packet, which is finite since quanta accumulate. *)
      let rec serve () =
        let i = !current in
        if Queue.is_empty queues.(i) then begin
          deficit.(i) <- 0.;
          advance ();
          serve ()
        end
        else begin
          if not credited.(i) then begin
            deficit.(i) <-
              deficit.(i) +. (float_of_int quantum_bytes *. weights.(i));
            credited.(i) <- true
          end;
          let head = Queue.peek queues.(i) in
          if float_of_int head.Packet.size <= deficit.(i) then begin
            let p = Queue.pop queues.(i) in
            deficit.(i) <- deficit.(i) -. float_of_int p.Packet.size;
            decr count;
            bytes := !bytes - p.Packet.size;
            if Queue.is_empty queues.(i) then begin
              deficit.(i) <- 0.;
              advance ()
            end;
            Some p
          end
          else begin
            advance ();
            serve ()
          end
        end
      in
      serve ()
    end
  in
  let peek () =
    if !count = 0 then None
    else begin
      let rec find i steps =
        if steps >= num_queues then None
        else if Queue.is_empty queues.(i) then
          find ((i + 1) mod num_queues) (steps + 1)
        else Queue.peek_opt queues.(i)
      in
      find !current 0
    end
  in
  Qdisc.make ~name ~enqueue_drop ~dequeue ~peek
    ~length:(fun () -> !count)
    ~bytes:(fun () -> !bytes)
    ~drops:(fun () -> !drops)
