(** Eiffel-style FFS-indexed circular bucket queue (Saeed et al., NSDI
    2019) — an exact PIFO over the bounded post-quantization rank space.

    One intrusive FIFO per rank, indexed by a hierarchical find-first-set
    bitmap: enqueue, dequeue and worst-rank eviction are O(1) (a constant
    number of 32-bit word scans), with zero allocation per operation after
    the first enqueue.  Semantics match {!Pifo_queue} exactly — dequeue in
    ascending [(rank, uid)] order; when full, an arrival ranked no better
    than the current worst is dropped, otherwise the worst-ranked most
    recently arrived packet is evicted — so it is a drop-in replacement
    wherever QVISOR's rank normalization bounds ranks to
    [\[0, rank_max\]], and is fuzzed against the conformance oracle as an
    exact backend.

    Ranks outside [\[0, rank_max\]] are clamped to the boundary bucket for
    ordering (the packet's own [rank] field is untouched).  QVISOR's
    synthesizer never emits such ranks; the clamp only matters when the
    queue is driven directly with unnormalized ranks. *)

val create :
  ?name:string -> ?rank_max:int -> capacity_pkts:int -> unit -> Qdisc.t
(** [rank_max] defaults to 65535, the synthesizer's quantization ceiling
    ({!Qvisor.Synthesizer.default_config}).  Memory is O(rank_max +
    capacity_pkts): ~1 MB per queue at the default rank space.

    @raise Invalid_argument if [capacity_pkts <= 0] or [rank_max < 0]. *)
