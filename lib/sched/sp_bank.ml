let create ?(name = "sp-bank") ~num_queues ~queue_capacity_pkts ~classify () =
  if num_queues <= 0 then invalid_arg "Sp_bank.create: num_queues <= 0";
  if queue_capacity_pkts <= 0 then invalid_arg "Sp_bank.create: capacity <= 0";
  let queues = Array.init num_queues (fun _ -> Queue.create ()) in
  let bytes = ref 0 in
  let count = ref 0 in
  let drops = ref 0 in
  let enqueue_drop p on_drop =
    let i = max 0 (min (num_queues - 1) (classify p)) in
    if Queue.length queues.(i) >= queue_capacity_pkts then begin
      incr drops;
      on_drop p
    end
    else begin
      Queue.push p queues.(i);
      incr count;
      bytes := !bytes + p.Packet.size
    end
  in
  let first_nonempty () =
    let rec find i =
      if i >= num_queues then None
      else if Queue.is_empty queues.(i) then find (i + 1)
      else Some i
    in
    find 0
  in
  let dequeue () =
    match first_nonempty () with
    | None -> None
    | Some i ->
      let p = Queue.pop queues.(i) in
      decr count;
      bytes := !bytes - p.Packet.size;
      Some p
  in
  let peek () =
    match first_nonempty () with
    | None -> None
    | Some i -> Queue.peek_opt queues.(i)
  in
  Qdisc.make ~name ~enqueue_drop ~dequeue ~peek
    ~length:(fun () -> !count)
    ~bytes:(fun () -> !bytes)
    ~drops:(fun () -> !drops)

let queue_of_rank ~bounds r =
  let n = Array.length bounds in
  let rec find i = if i >= n - 1 then n - 1 else if bounds.(i) >= r then i else find (i + 1) in
  if n = 0 then 0 else find 0
