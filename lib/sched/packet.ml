type kind = Data | Ack

type t = {
  uid : int;
  kind : kind;
  flow : int;
  tenant : int;
  src : int;
  dst : int;
  size : int;
  seq : int;
  payload : int;
  remaining : int;
  deadline : float;
  created_at : float;
  mutable label : int;
  mutable rank : int;
  mutable enqueued_at : float;
}

let header_bytes = 58

(* Domain-local, not a shared global: [uid] only breaks rank ties between
   packets of the same simulation, and a simulation runs entirely on one
   domain — so per-domain counters keep tie-breaking deterministic when
   independent simulations run on parallel worker domains (a shared
   counter would interleave differently on every run). *)
let uid_counter = Domain.DLS.new_key (fun () -> ref 0)

let reset_uid_counter () = Domain.DLS.get uid_counter := 0

let make ?(kind = Data) ?(tenant = 0) ?(src = 0) ?(dst = 0) ?(seq = 0) ?payload
    ?remaining ?(deadline = infinity) ?(created_at = 0.) ?(rank = 0) ~flow
    ~size () =
  let payload =
    match payload with Some p -> p | None -> max 0 (size - header_bytes)
  in
  let remaining = match remaining with Some r -> r | None -> payload in
  let counter = Domain.DLS.get uid_counter in
  incr counter;
  {
    uid = !counter;
    kind;
    flow;
    tenant;
    src;
    dst;
    size;
    seq;
    payload;
    remaining;
    deadline;
    created_at;
    label = rank;
    rank;
    enqueued_at = created_at;
  }

let compare_rank a b =
  let c = compare a.rank b.rank in
  if c <> 0 then c else compare a.uid b.uid

let pp ppf p =
  Format.fprintf ppf "pkt#%d(flow=%d tenant=%d rank=%d size=%dB)" p.uid p.flow
    p.tenant p.rank p.size
