let create ?(name = "fifo") ~capacity_pkts () =
  if capacity_pkts <= 0 then invalid_arg "Fifo_queue.create: capacity <= 0";
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let enqueue_drop p on_drop =
    if Queue.length q >= capacity_pkts then begin
      incr drops;
      on_drop p
    end
    else begin
      Queue.push p q;
      bytes := !bytes + p.Packet.size
    end
  in
  let dequeue () =
    match Queue.take_opt q with
    | None -> None
    | Some p ->
      bytes := !bytes - p.Packet.size;
      Some p
  in
  Qdisc.make ~name ~enqueue_drop ~dequeue
    ~peek:(fun () -> Queue.peek_opt q)
    ~length:(fun () -> Queue.length q)
    ~bytes:(fun () -> !bytes)
    ~drops:(fun () -> !drops)
