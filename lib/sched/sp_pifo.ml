let create_with_bounds ?(name = "sp-pifo") ~num_queues ~queue_capacity_pkts () =
  if num_queues <= 0 then invalid_arg "Sp_pifo.create: num_queues <= 0";
  if queue_capacity_pkts <= 0 then invalid_arg "Sp_pifo.create: capacity <= 0";
  let queues = Array.init num_queues (fun _ -> Queue.create ()) in
  let bounds = Array.make num_queues 0 in
  let bytes = ref 0 in
  let count = ref 0 in
  let drops = ref 0 in
  let push i p on_drop =
    if Queue.length queues.(i) >= queue_capacity_pkts then begin
      incr drops;
      on_drop p
    end
    else begin
      Queue.push p queues.(i);
      incr count;
      bytes := !bytes + p.Packet.size
    end
  in
  let enqueue_drop p on_drop =
    let r = p.Packet.rank in
    (* Bottom-up scan: first queue (from lowest priority) whose bound <= r. *)
    let rec scan i =
      if i < 0 then begin
        (* Inversion: r is smaller than every bound.  Push-down. *)
        let cost = bounds.(0) - r in
        for j = 0 to num_queues - 1 do
          bounds.(j) <- bounds.(j) - cost
        done;
        push 0 p on_drop
      end
      else if bounds.(i) <= r then begin
        bounds.(i) <- r;
        push i p on_drop
      end
      else scan (i - 1)
    in
    scan (num_queues - 1)
  in
  let first_nonempty () =
    let rec find i =
      if i >= num_queues then None
      else if Queue.is_empty queues.(i) then find (i + 1)
      else Some i
    in
    find 0
  in
  let dequeue () =
    match first_nonempty () with
    | None -> None
    | Some i ->
      let p = Queue.pop queues.(i) in
      decr count;
      bytes := !bytes - p.Packet.size;
      Some p
  in
  let peek () =
    match first_nonempty () with
    | None -> None
    | Some i -> Queue.peek_opt queues.(i)
  in
  let qdisc =
    Qdisc.make ~name ~enqueue_drop ~dequeue ~peek
      ~length:(fun () -> !count)
      ~bytes:(fun () -> !bytes)
      ~drops:(fun () -> !drops)
  in
  (qdisc, fun () -> Array.copy bounds)

let create ?name ~num_queues ~queue_capacity_pkts () =
  fst (create_with_bounds ?name ~num_queues ~queue_capacity_pkts ())
