(** Queue disciplines as first-class values.

    A discipline is a record of closures over hidden state.  This lets a
    switch port swap its discipline at runtime (needed for QVISOR's runtime
    re-synthesis experiments) and lets heterogeneous banks mix disciplines,
    which a functor-based encoding would make awkward.

    The hot-path entry point is {!t.enqueue_drop}, which reports dropped
    packets through a caller-supplied callback instead of allocating a
    [Packet.t list] per enqueue.  The list-returning {!t.enqueue} is derived
    from it by {!make} and kept for compatibility (tests, conformance
    replay, examples). *)

type t = {
  name : string;
  enqueue_drop : Packet.t -> (Packet.t -> unit) -> unit;
      (** [enqueue_drop p on_drop] offers packet [p] and calls [on_drop d]
          once per packet dropped by the operation — possibly the offered
          packet itself (tail drop), possibly queued packets evicted to
          make room (PIFO worst-rank eviction), or not at all when
          everything fit.  The callback runs synchronously, before
          [enqueue_drop] returns, and must not re-enter the discipline.
          This is the allocation-free hot path: no list is built. *)
  enqueue : Packet.t -> Packet.t list;
      (** Offer a packet.  Returns the packets dropped by the operation —
          possibly the offered packet itself (tail drop), possibly queued
          packets evicted to make room (PIFO worst-rank eviction), or [[]]
          when everything fit.  Derived from {!t.enqueue_drop} by {!make};
          prefer [enqueue_drop] on hot paths. *)
  dequeue : unit -> Packet.t option;
      (** Remove the packet the discipline schedules next.

          {b Equal-rank tie-break contract:} among queued packets the
          discipline considers equally urgent, service must be in arrival
          order (FIFO), i.e. by ascending {!Packet.t.uid}.  The
          conformance oracle relies on this: rank-sorted disciplines break
          rank ties by uid, and bank/bucket disciplines must use FIFO
          queues internally.

          Audit (PR 3, verified by [test_conformance] and fuzzed by
          [qvisor-cli conformance]):
          - [Pifo_queue]: orders by [(rank, uid)] — conformant, and the
            reference the oracle mirrors.
          - [Bucket_queue]: FFS-indexed per-rank FIFO buckets, so ties
            serve in arrival order by construction — conformant, exact
            (fuzzed against the oracle like [Pifo_queue]).
          - [Pifo_tree]: per-node FIFO sequencing — conformant.
          - [Fifo_queue], [Sp_bank], [Drr_bank], [Aifo]: FIFO within each
            internal queue — conformant among packets mapped to the same
            queue (cross-queue order is the approximation, not a tie).
          - [Sp_pifo]: equal ranks can land in different queues after a
            push-down, so equal-rank FIFO holds only within a queue; this
            is inherent to the SP-PIFO mechanism and is measured as
            inversions rather than treated as a contract violation.
          - [Calendar_queue]: FIFO within a bucket; ranks beyond the
            ring's horizon now park in a sorted overflow stage and refill
            the ring as it drains, so an older epoch is never served
            behind a newer one (the former wrap-around inversion).  The
            remaining approximation is bucket-width rank coarsening. *)
  peek : unit -> Packet.t option;
  length : unit -> int;  (** queued packets *)
  bytes : unit -> int;  (** queued bytes *)
  drops : unit -> int;  (** cumulative packets dropped by enqueue *)
}

val make :
  name:string ->
  enqueue_drop:(Packet.t -> (Packet.t -> unit) -> unit) ->
  dequeue:(unit -> Packet.t option) ->
  peek:(unit -> Packet.t option) ->
  length:(unit -> int) ->
  bytes:(unit -> int) ->
  drops:(unit -> int) ->
  t
(** Build a discipline from its hot-path operations.  The list-returning
    {!t.enqueue} field is derived from [enqueue_drop] (collects the
    callback's packets in arrival order). *)

val accepted : t -> Packet.t -> Packet.t list -> bool
(** [accepted q p dropped] is [true] when packet [p] survived the enqueue
    that returned [dropped] (i.e. [p] is not among the dropped). *)

val drain : t -> Packet.t list
(** Dequeue everything, in service order. *)

val pp : Format.formatter -> t -> unit
