(* Ring of FIFO buckets covering [day, day + num_buckets * width); ranks at
   or beyond the horizon park in a sorted overflow stage (keyed by
   (rank, arrival seq)) and refill the ring as the day advances.  This
   removes the old wrap-around epoch inversion where a far-future rank
   aliased into the last bucket and could be served behind a later epoch. *)

let create_with_day ?(name = "calendar") ~num_buckets ~bucket_width
    ~capacity_pkts () =
  if num_buckets <= 0 then invalid_arg "Calendar_queue: num_buckets <= 0";
  if bucket_width <= 0 then invalid_arg "Calendar_queue: bucket_width <= 0";
  if capacity_pkts <= 0 then invalid_arg "Calendar_queue: capacity <= 0";
  let buckets : Packet.t Queue.t array =
    Array.init num_buckets (fun _ -> Queue.create ())
  in
  let head = ref 0 in
  let day_rank = ref 0 in
  let count = ref 0 in
  let over_count = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let seq = ref 0 in
  (* Sorted ascending by (rank, seq): the refill order.  Far ranks are rare
     by construction (the ring covers the common case), so a sorted list is
     adequate. *)
  let overflow : ((int * int) * Packet.t) list ref = ref [] in
  let horizon () = !day_rank + (num_buckets * bucket_width) in
  let ring_push p =
    (* Pre: p.rank < horizon ().  Ranks below the current day are late and
       land in today's bucket. *)
    let offset = max 0 ((p.Packet.rank - !day_rank) / bucket_width) in
    Queue.push p buckets.((!head + offset) mod num_buckets)
  in
  let over_insert p =
    let key = (p.Packet.rank, !seq) in
    incr seq;
    let rec ins = function
      | [] -> [ (key, p) ]
      | ((k', _) as hd) :: tl when k' <= key -> hd :: ins tl
      | rest -> (key, p) :: rest
    in
    overflow := ins !overflow;
    incr over_count
  in
  (* Move overflow packets that now fit the ring's horizon into buckets. *)
  let rec drain_overflow () =
    match !overflow with
    | ((r, _), p) :: tl when r < horizon () ->
      overflow := tl;
      decr over_count;
      ring_push p;
      drain_overflow ()
    | _ -> ()
  in
  let rec rotate_to_nonempty () =
    if Queue.is_empty buckets.(!head) then begin
      head := (!head + 1) mod num_buckets;
      day_rank := !day_rank + bucket_width;
      rotate_to_nonempty ()
    end
  in
  (* Position the ring on the next packet to serve.  Pre: count > 0. *)
  let settle () =
    drain_overflow ();
    if !count - !over_count = 0 then begin
      (* Ring empty but overflow holds packets: jump the day straight to
         the earliest parked rank's bucket and refill. *)
      (match !overflow with
      | ((r, _), _) :: _ -> day_rank := r / bucket_width * bucket_width
      | [] -> assert false);
      drain_overflow ()
    end;
    rotate_to_nonempty ()
  in
  let enqueue_drop p on_drop =
    if !count >= capacity_pkts then begin
      incr drops;
      on_drop p
    end
    else begin
      incr count;
      bytes := !bytes + p.Packet.size;
      if p.Packet.rank < horizon () then ring_push p else over_insert p
    end
  in
  let dequeue () =
    if !count = 0 then None
    else begin
      settle ();
      let p = Queue.pop buckets.(!head) in
      decr count;
      bytes := !bytes - p.Packet.size;
      Some p
    end
  in
  let peek () =
    if !count = 0 then None
    else begin
      settle ();
      Queue.peek_opt buckets.(!head)
    end
  in
  let qdisc =
    Qdisc.make ~name ~enqueue_drop ~dequeue ~peek
      ~length:(fun () -> !count)
      ~bytes:(fun () -> !bytes)
      ~drops:(fun () -> !drops)
  in
  (qdisc, fun () -> !day_rank)

let create ?name ~num_buckets ~bucket_width ~capacity_pkts () =
  fst (create_with_day ?name ~num_buckets ~bucket_width ~capacity_pkts ())
