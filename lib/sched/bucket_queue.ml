(* Eiffel-style bucket queue (Saeed et al., NSDI 2019): one intrusive FIFO
   per rank over the bounded post-quantization rank space, indexed by a
   hierarchical find-first-set bitmap.  Enqueue, dequeue and worst-rank
   eviction are all O(1) modulo a constant number of 32-bit word scans.

   Layout:
   - [anchors]: per-rank doubly-linked FIFO anchors into a slot pool
     sized [capacity_pkts], bit-packed as [(tail+1) lsl 21 lor (head+1)]
     ([0] = empty bucket) so an enqueue or dequeue touches a single
     cache line of anchor state — with a 16-bit rank space the anchor
     array is 512 KB and a random rank is a guaranteed cache miss, so
     one line instead of two is the difference between one stall and
     two.  Links live in flat int arrays ([nxt]/[prv]); [nxt] doubles
     as the free-list chain.
   - [levels]: occupancy bitmaps.  Level 0 has one bit per rank; each
     higher level has one bit per 32-bit word of the level below, up to
     a single root word.  Find-first/find-last descend from the root
     with branch-free de Bruijn scans (OCaml ints are 63-bit, so the
     64-bit multiply trick applies to 32-bit words without overflow;
     data-dependent branches would mispredict on every random rank).

   Semantics replicate Pifo_queue exactly (the conformance oracle's model):
   serve ascending (rank, uid); when full, an arrival ranked no better than
   the current worst is tail-dropped, otherwise the worst-ranked most
   recent arrival is evicted.  Within a rank bucket, arrival order equals
   uid order, so the bucket head is the (rank, uid) minimum and the tail of
   the last occupied bucket is the (rank, uid) maximum. *)

let word_bits = 32

(* Branch-free bit scans over one 32-bit word.  [x land (-x)] isolates
   the lowest set bit; the de Bruijn multiply maps each of the 32
   possible single-bit words to a distinct table index. *)
let debruijn32 = 0x077CB531

let ntz_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let ntz32 x = Array.unsafe_get ntz_table ((((x land -x) * debruijn32) lsr 27) land 31)

let fls32 x =
  (* Smear the top bit downward, then isolate it and scan. *)
  let x = x lor (x lsr 1) in
  let x = x lor (x lsr 2) in
  let x = x lor (x lsr 4) in
  let x = x lor (x lsr 8) in
  let x = x lor (x lsr 16) in
  let msb = x lxor (x lsr 1) in
  Array.unsafe_get ntz_table (((msb * debruijn32) lsr 27) land 31)

(* Anchor packing: a bucket's head and tail slot ids share one int as
   [(tail+1) lsl anchor_bits lor (head+1)], with [0] meaning empty.
   Slot ids must therefore fit in [anchor_bits] including the +1 bias. *)
let anchor_bits = 21
let anchor_mask = (1 lsl anchor_bits) - 1

let create ?(name = "bucket-pifo") ?(rank_max = 65535) ~capacity_pkts () =
  if capacity_pkts <= 0 then invalid_arg "Bucket_queue.create: capacity <= 0";
  if capacity_pkts > anchor_mask - 1 then
    invalid_arg "Bucket_queue.create: capacity > 2^21 - 2 packets";
  if rank_max < 0 then invalid_arg "Bucket_queue.create: rank_max < 0";
  let nb = rank_max + 1 in
  let anchors = Array.make nb 0 in
  (* Occupancy bitmaps, level 0 widest, root narrowest (single word). *)
  let levels =
    let rec build acc size =
      let words = (size + word_bits - 1) / word_bits in
      let acc = Array.make words 0 :: acc in
      if words = 1 then acc else build acc words
    in
    Array.of_list (List.rev (build [] nb))
  in
  let num_levels = Array.length levels in
  (* Bitmap indices derive from clamped ranks (and word indices thereof),
     so the unsafe accesses stay in bounds; the checks cost real time on
     the per-packet path. *)
  let rec set_bit lvl idx =
    let w = idx lsr 5 and b = idx land 31 in
    let words = Array.unsafe_get levels lvl in
    let old = Array.unsafe_get words w in
    Array.unsafe_set words w (old lor (1 lsl b));
    if old = 0 && lvl + 1 < num_levels then set_bit (lvl + 1) w
  in
  let rec clear_bit lvl idx =
    let w = idx lsr 5 and b = idx land 31 in
    let words = Array.unsafe_get levels lvl in
    let nw = Array.unsafe_get words w land lnot (1 lsl b) in
    Array.unsafe_set words w nw;
    if nw = 0 && lvl + 1 < num_levels then clear_bit (lvl + 1) w
  in
  (* Lowest / highest occupied rank; caller guarantees non-emptiness. *)
  let find_first () =
    let pos = ref 0 in
    for lvl = num_levels - 1 downto 0 do
      pos := (!pos lsl 5) lor ntz32 (Array.unsafe_get (Array.unsafe_get levels lvl) !pos)
    done;
    !pos
  in
  let find_last () =
    let pos = ref 0 in
    for lvl = num_levels - 1 downto 0 do
      pos := (!pos lsl 5) lor fls32 (Array.unsafe_get (Array.unsafe_get levels lvl) !pos)
    done;
    !pos
  in
  (* Slot pool.  [pool] is filled lazily with the first enqueued packet as
     the placeholder (allocating a dummy Packet.t would perturb the uid
     stream the tie-break contract depends on). *)
  let pool = ref [||] in
  let nxt = Array.make capacity_pkts (-1) in
  let prv = Array.make capacity_pkts (-1) in
  let free = ref 0 in
  for i = 0 to capacity_pkts - 2 do
    nxt.(i) <- i + 1
  done;
  let count = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let clamp r = if r < 0 then 0 else if r > rank_max then rank_max else r in
  let insert p =
    if Array.length !pool = 0 then pool := Array.make capacity_pkts p;
    let slot = !free in
    free := Array.unsafe_get nxt slot;
    !pool.(slot) <- p;
    Array.unsafe_set nxt slot (-1);
    let b = clamp p.Packet.rank in
    let a = Array.unsafe_get anchors b in
    if a = 0 then begin
      Array.unsafe_set prv slot (-1);
      Array.unsafe_set anchors b (((slot + 1) lsl anchor_bits) lor (slot + 1));
      set_bit 0 b
    end
    else begin
      let t = (a lsr anchor_bits) - 1 in
      Array.unsafe_set nxt t slot;
      Array.unsafe_set prv slot t;
      Array.unsafe_set anchors b (((slot + 1) lsl anchor_bits) lor (a land anchor_mask))
    end;
    incr count;
    bytes := !bytes + p.Packet.size
  in
  let release slot p =
    nxt.(slot) <- !free;
    free := slot;
    decr count;
    bytes := !bytes - p.Packet.size
  in
  let pop_head b =
    let a = Array.unsafe_get anchors b in
    let slot = (a land anchor_mask) - 1 in
    let p = !pool.(slot) in
    let h' = Array.unsafe_get nxt slot in
    if h' = -1 then begin
      Array.unsafe_set anchors b 0;
      clear_bit 0 b
    end
    else begin
      Array.unsafe_set prv h' (-1);
      Array.unsafe_set anchors b ((a land lnot anchor_mask) lor (h' + 1))
    end;
    release slot p;
    p
  in
  let pop_tail b =
    let a = Array.unsafe_get anchors b in
    let slot = (a lsr anchor_bits) - 1 in
    let p = !pool.(slot) in
    let t' = Array.unsafe_get prv slot in
    if t' = -1 then begin
      Array.unsafe_set anchors b 0;
      clear_bit 0 b
    end
    else begin
      Array.unsafe_set nxt t' (-1);
      Array.unsafe_set anchors b (((t' + 1) lsl anchor_bits) lor (a land anchor_mask))
    end;
    release slot p;
    p
  in
  let enqueue_drop p on_drop =
    if !count < capacity_pkts then insert p
    else begin
      let worst = find_last () in
      if clamp p.Packet.rank >= worst then begin
        incr drops;
        on_drop p
      end
      else begin
        let victim = pop_tail worst in
        insert p;
        incr drops;
        on_drop victim
      end
    end
  in
  let dequeue () = if !count = 0 then None else Some (pop_head (find_first ())) in
  let peek () =
    if !count = 0 then None
    else Some !pool.((anchors.(find_first ()) land anchor_mask) - 1)
  in
  Qdisc.make ~name ~enqueue_drop ~dequeue ~peek
    ~length:(fun () -> !count)
    ~bytes:(fun () -> !bytes)
    ~drops:(fun () -> !drops)
