module J = Engine.Json

type point = {
  count : int;
  sum : float;
  min : float;
  max : float;
  last : float;
}

type series = {
  name : string;
  kind : string;
  tenant : string option;
  start : float;
  step : float;
  points : point option array;
}

type annotation = {
  a_time : float;
  a_kind : string;
  a_tenant : string option;
  a_detail : string;
}

type tenant = { id : int; name : string; algorithm : string; health : string }

type data = {
  now : float;
  sim_time : float;
  uptime_seconds : float;
  window_start : float;
  window_stop : float;
  series_count : int;
  memory_bytes : int;
  per_series_bytes : int;
  tenants : tenant list;
  series : series list;
  annotations : annotation list;
}

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name json ~conv =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "/query reply: missing or ill-typed %S" name)

let opt_str name json =
  match J.member name json with Some (J.String s) -> Some s | _ -> None

let point_of_json = function
  | J.Null -> Ok None
  | J.List
      [ J.Number count; J.Number sum; J.Number min; J.Number max; J.Number last ]
    ->
    Ok (Some { count = int_of_float count; sum; min; max; last })
  | _ -> Error "/query reply: malformed point"

let all results =
  List.fold_left
    (fun acc r ->
      let* acc = acc in
      let* v = r in
      Ok (v :: acc))
    (Ok []) results
  |> Result.map List.rev

let series_of_json json =
  let* name = field "name" json ~conv:J.to_str in
  let* kind = field "kind" json ~conv:J.to_str in
  let tenant = opt_str "tenant" json in
  let* start = field "start" json ~conv:J.to_float in
  let* step = field "step" json ~conv:J.to_float in
  let* point_jsons = field "points" json ~conv:J.to_list in
  let* points = all (List.map point_of_json point_jsons) in
  Ok { name; kind; tenant; start; step; points = Array.of_list points }

let annotation_of_json json =
  let* a_time = field "t" json ~conv:J.to_float in
  let* a_kind = field "kind" json ~conv:J.to_str in
  let a_tenant = opt_str "tenant" json in
  let* a_detail = field "detail" json ~conv:J.to_str in
  Ok { a_time; a_kind; a_tenant; a_detail }

let tenant_of_json json =
  let* id = field "id" json ~conv:J.to_int in
  let* name = field "name" json ~conv:J.to_str in
  let* algorithm = field "algorithm" json ~conv:J.to_str in
  let* health = field "health" json ~conv:J.to_str in
  Ok { id; name; algorithm; health }

let data_of_json json =
  let* now = field "now" json ~conv:J.to_float in
  let* sim_time = field "sim_time" json ~conv:J.to_float in
  let* uptime_seconds = field "uptime_seconds" json ~conv:J.to_float in
  let* window_start = field "start" json ~conv:J.to_float in
  let* window_stop = field "end" json ~conv:J.to_float in
  let* series_count = field "series_count" json ~conv:J.to_int in
  let* memory_bytes = field "memory_bytes" json ~conv:J.to_int in
  let* per_series_bytes = field "per_series_bytes" json ~conv:J.to_int in
  let* tenant_jsons = field "tenants" json ~conv:J.to_list in
  let* tenants = all (List.map tenant_of_json tenant_jsons) in
  let* series_jsons = field "series" json ~conv:J.to_list in
  let* series = all (List.map series_of_json series_jsons) in
  let* ann_jsons = field "annotations" json ~conv:J.to_list in
  let* annotations = all (List.map annotation_of_json ann_jsons) in
  Ok
    {
      now;
      sim_time;
      uptime_seconds;
      window_start;
      window_stop;
      series_count;
      memory_bytes;
      per_series_bytes;
      tenants;
      series;
      annotations;
    }

let data_of_body body =
  let* json = J.of_string body in
  data_of_json json

let fetch ?host ~port ~query () =
  let target = if query = "" then "/query" else "/query?" ^ query in
  match Http.get ?host ~port target with
  | Error e -> Error e
  | Ok (200, body) -> data_of_body body
  | Ok (status, body) ->
    Error (Printf.sprintf "/query returned %d: %s" status (String.trim body))

(* ------------------------------------------------------------------ *)
(* Series views                                                       *)
(* ------------------------------------------------------------------ *)

let find_series data name =
  List.find_opt (fun (s : series) -> s.name = name) data.series

let values (s : series) =
  Array.map
    (function
      | None -> None
      | Some p -> Some (if s.kind = "counter" then p.sum /. s.step else p.last))
    s.points

let latest vs =
  let out = ref None in
  Array.iter (function Some v -> out := Some v | None -> ()) vs;
  !out

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let spark_levels = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                      "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let sparkline ?(width = 24) vs =
  let n = Array.length vs in
  let off = if n > width then n - width else 0 in
  let hi =
    Array.fold_left
      (fun acc -> function Some v when v > acc -> v | _ -> acc)
      0. vs
  in
  let buf = Buffer.create (width * 3) in
  for i = off to n - 1 do
    match vs.(i) with
    | None -> Buffer.add_char buf ' '
    | Some v ->
      let level =
        if hi <= 0. then 0
        else Stdlib.min 7 (int_of_float (v /. hi *. 7.999))
      in
      Buffer.add_string buf spark_levels.(Stdlib.max 0 level)
  done;
  Buffer.contents buf

let health_badge ?(color = false) state =
  let sym, code =
    match state with
    | "healthy" -> ("\u{25CF}", "\027[32m")
    | "degraded" -> ("\u{25D0}", "\027[33m")
    | "violating" -> ("\u{2716}", "\027[31m")
    | _ -> ("?", "")
  in
  let text = sym ^ " " ^ state in
  if color && code <> "" then code ^ text ^ "\027[0m" else text

(* Fixed-width cell padding that ignores ANSI escapes and counts UTF-8
   code points, not bytes — sparklines and badges are multi-byte. *)
let display_width s =
  let n = String.length s in
  let w = ref 0 in
  let i = ref 0 in
  while !i < n do
    let c = Char.code s.[!i] in
    if c = 0x1b then begin
      (* skip CSI sequence *)
      incr i;
      while !i < n && not (Char.code s.[!i] >= 0x40 && s.[!i] <> '[') do
        incr i
      done;
      incr i
    end
    else begin
      (* count only UTF-8 lead bytes *)
      if c land 0xC0 <> 0x80 then incr w;
      incr i
    end
  done;
  !w

let pad width s =
  let w = display_width s in
  if w >= width then s ^ " " else s ^ String.make (width - w + 1) ' '

let fmt_si v =
  let a = Float.abs v in
  if a >= 1e9 then Printf.sprintf "%.1fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if a >= 1e4 then Printf.sprintf "%.0fk" (v /. 1e3)
  else if a >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else if a >= 100. then Printf.sprintf "%.0f" v
  else if a >= 1. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let fmt_seconds v =
  let a = Float.abs v in
  if a >= 1. then Printf.sprintf "%.2fs" v
  else if a >= 1e-3 then Printf.sprintf "%.1fms" (v *. 1e3)
  else if a >= 1e-6 then Printf.sprintf "%.0fus" (v *. 1e6)
  else if a = 0. then "0"
  else Printf.sprintf "%.0fns" (v *. 1e9)

let fmt_bytes b =
  let f = float_of_int b in
  if f >= 1048576. then Printf.sprintf "%.1fMiB" (f /. 1048576.)
  else if f >= 1024. then Printf.sprintf "%.1fKiB" (f /. 1024.)
  else Printf.sprintf "%dB" b

let tenant_series data (tn : tenant) suffix =
  find_series data (Printf.sprintf "%s%d%s" "net.tenant." tn.id suffix)

let annotation_line a =
  Printf.sprintf "  %8.2fs  [%s]%s %s" a.a_time a.a_kind
    (match a.a_tenant with Some t -> " " ^ t ^ ":" | None -> "")
    a.a_detail

let render_top ?(color = false) data =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "qvisor top \u{2014} sim %.2fs  up %.1fs  window [%.1fs, %.1fs]  %d \
        series in %s (fixed)\n"
       data.sim_time data.uptime_seconds data.window_start data.window_stop
       data.series_count (fmt_bytes data.memory_bytes));
  Buffer.add_string buf
    (pad 10 "TENANT" ^ pad 8 "ALGO" ^ pad 12 "HEALTH"
    ^ pad 32 "THROUGHPUT pkt/s"
    ^ pad 32 "DROPS pkt/s" ^ pad 22 "DELAY p99" ^ "BURN fast\n");
  List.iter
    (fun (tn : tenant) ->
      let cell suffix =
        match tenant_series data tn suffix with
        | None -> (None, [||])
        | Some s ->
          let vs = values s in
          (latest vs, vs)
      in
      let thr, thr_vs = cell ".dequeue" in
      let drop, drop_vs = cell ".drop" in
      let delay_vs =
        match
          find_series data
            (Printf.sprintf "slo.tenant.%d.delay_quantile_seconds" tn.id)
        with
        | None -> [||]
        | Some s -> values s
      in
      let burn_vs =
        match find_series data (Printf.sprintf "slo.tenant.%d.fast_burn" tn.id) with
        | None -> [||]
        | Some s -> values s
      in
      let num fmt = function None -> "-" | Some v -> fmt v in
      let rate_cell v vs =
        pad 32 (Printf.sprintf "%s %s" (num fmt_si v) (sparkline vs))
      in
      Buffer.add_string buf
        (pad 10 tn.name ^ pad 8 tn.algorithm
        ^ pad 12 (health_badge ~color tn.health)
        ^ rate_cell thr thr_vs ^ rate_cell drop drop_vs
        ^ pad 22
            (Printf.sprintf "%s %s"
               (num fmt_seconds (latest delay_vs))
               (sparkline ~width:12 delay_vs))
        ^ Printf.sprintf "%s %s\n"
            (num fmt_si (latest burn_vs))
            (sparkline ~width:12 burn_vs)))
    data.tenants;
  (match data.annotations with
  | [] -> ()
  | anns ->
    Buffer.add_string buf "recent incidents:\n";
    let last8 =
      let n = List.length anns in
      if n <= 8 then anns else List.filteri (fun i _ -> i >= n - 8) anns
    in
    List.iter
      (fun a -> Buffer.add_string buf (annotation_line a ^ "\n"))
      last8);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Post-mortem report                                                 *)
(* ------------------------------------------------------------------ *)

(* Bucket mean of up to [w] populated buckets strictly before (after)
   the incident bucket. *)
let window_mean vs (s : series) ~incident ~w ~side =
  let n = Array.length vs in
  let bucket_of t = int_of_float ((t -. s.start) /. s.step) in
  let pivot = bucket_of incident in
  let lo, hi =
    match side with
    | `Before -> (Stdlib.max 0 (pivot - w), Stdlib.min n pivot)
    | `After -> (Stdlib.max 0 pivot, Stdlib.min n (pivot + w))
  in
  let sum = ref 0. and cnt = ref 0 in
  for i = lo to hi - 1 do
    match vs.(i) with
    | Some v ->
      sum := !sum +. v;
      incr cnt
    | None -> ()
  done;
  if !cnt = 0 then None else Some (!sum /. float_of_int !cnt)

let render_report ?(top_n = 10) data =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "qvisor report \u{2014} window [%.1fs, %.1fs], %d series, %d incidents\n"
       data.window_start data.window_stop (List.length data.series)
       (List.length data.annotations));
  if data.annotations = [] then
    Buffer.add_string buf "no incidents in the window.\n"
  else
    List.iter
      (fun a ->
        Buffer.add_string buf ("\nincident:" ^ annotation_line a ^ "\n");
        let movers =
          List.filter_map
            (fun (s : series) ->
              let vs = values s in
              let before =
                window_mean vs s ~incident:a.a_time ~w:5 ~side:`Before
              in
              let after =
                window_mean vs s ~incident:a.a_time ~w:5 ~side:`After
              in
              match (before, after) with
              | Some b, Some f ->
                let rel =
                  (f -. b) /. (Stdlib.max (Float.abs b) (Float.abs f) +. 1e-12)
                in
                if Float.abs rel < 0.01 then None else Some (s.name, b, f, rel)
              | _ -> None)
            data.series
          |> List.sort (fun (_, _, _, x) (_, _, _, y) ->
                 Float.compare (Float.abs y) (Float.abs x))
        in
        match movers with
        | [] -> Buffer.add_string buf "  no series moved.\n"
        | movers ->
          let kept = List.filteri (fun i _ -> i < top_n) movers in
          List.iter
            (fun (name, b, f, rel) ->
              Buffer.add_string buf
                (Printf.sprintf "  %+7.1f%%  %s  %s \u{2192} %s\n" (rel *. 100.)
                   (pad 40 name) (fmt_si b) (fmt_si f)))
            kept;
          let dropped = List.length movers - List.length kept in
          if dropped > 0 then
            Buffer.add_string buf
              (Printf.sprintf "  (%d more series moved < rank %d)\n" dropped
                 top_n))
      data.annotations;
  Buffer.contents buf
