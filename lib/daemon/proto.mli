(** The daemon's control-plane wire protocol.

    Line-oriented JSON over a Unix-domain stream socket: each request is
    one JSON object on one line, each reply one JSON object on one line.
    A connection may carry any number of request/reply exchanges.

    Requests name their operation in an ["op"] field:

    {v {"op":"tenant-add","tenant":{...},"policy":"edf >> pfabric"}
       {"op":"tenant-remove","id":1,"policy":"pfabric"}
       {"op":"policy-update","policy":"pfabric + edf"}
       {"op":"status"}
       {"op":"drain"}
       {"op":"shutdown"} v}

    Replies carry [{"ok":true,...}] with a ["reply"] discriminator on
    success, or [{"ok":false,"error":{"kind":...,"message":...}}]
    reusing {!Qvisor.Serialize.error_to_json} on failure.  Every encoder
    here round-trips through its decoder — the daemon test suite checks
    each constructor. *)

type request =
  | Tenant_add of { tenant : Qvisor.Tenant.t; policy : Qvisor.Policy.t option }
      (** admit a tenant; [policy] replaces the operator policy when the
          current one does not already name the newcomer *)
  | Tenant_remove of { tenant_id : int; policy : Qvisor.Policy.t option }
      (** evict a tenant; [policy] replaces the operator policy when the
          current one still names the departed *)
  | Policy_update of Qvisor.Policy.t
  | Status
  | Drain  (** stop traffic and refuse mutations; keep observability up *)
  | Shutdown

type tenant_status = {
  ts_id : int;
  ts_name : string;
  ts_algorithm : string;
  ts_health : Engine.Health.state;
}

type status = {
  epoch : int;  (** plan generation: 1 at startup, +1 per successful swap *)
  sim_time : float;  (** simulated seconds served so far *)
  uptime_seconds : float;  (** wall-clock seconds since the daemon started *)
  draining : bool;
  policy : string;  (** operator syntax of the serving policy *)
  tenants : tenant_status list;  (** tenant-id order *)
  resyntheses : int;
  remediations : int;  (** remediation actions fired so far *)
  tsdb_series : int;  (** retention-store series interned so far *)
  tsdb_memory_bytes : int;  (** {!Engine.Tsdb.memory_bytes} — fixed bound *)
}

type reply =
  | Added of { epoch : int }
  | Removed of { epoch : int }
  | Updated of { epoch : int }
  | Status_reply of status
  | Draining
  | Shutting_down

type outcome = (reply, Qvisor.Error.t) result

val request_to_json : request -> Engine.Json.t

val request_of_json : Engine.Json.t -> (request, Qvisor.Error.t) result

val outcome_to_json : outcome -> Engine.Json.t

val outcome_of_json : Engine.Json.t -> (outcome, Qvisor.Error.t) result

val request_line : request -> string
(** [request_to_json] serialized with the trailing newline — exactly the
    bytes a client writes. *)

val outcome_line : outcome -> string

val parse_request : string -> (request, Qvisor.Error.t) result
(** One wire line (sans newline) to a request; malformed JSON or an
    unknown ["op"] yields a [Config] error the server sends back as a
    failure reply. *)

val parse_outcome : string -> (outcome, Qvisor.Error.t) result
