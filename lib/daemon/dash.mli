(** Client-side rendering for [qvisor-cli top] and [qvisor-cli report].

    Everything here is pure: decode a [GET /query] reply ({!Server.query_body})
    into {!data}, then render a dashboard frame ({!render_top}) or an
    incident post-mortem ({!render_report}) as plain strings.  The only
    I/O is {!fetch}, a thin wrapper over {!Http.get}.  Keeping the
    renderers pure lets the test suite assert on frames without a
    terminal. *)

type point = {
  count : int;
  sum : float;
  min : float;
  max : float;
  last : float;
}

type series = {
  name : string;
  kind : string;  (** ["gauge"] | ["counter"] *)
  tenant : string option;
  start : float;
  step : float;
  points : point option array;
}

type annotation = {
  a_time : float;
  a_kind : string;
  a_tenant : string option;
  a_detail : string;
}

type tenant = {
  id : int;
  name : string;
  algorithm : string;
  health : string;  (** ["healthy"] | ["degraded"] | ["violating"] *)
}

type data = {
  now : float;
  sim_time : float;
  uptime_seconds : float;
  window_start : float;
  window_stop : float;
  series_count : int;
  memory_bytes : int;
  per_series_bytes : int;
  tenants : tenant list;
  series : series list;
  annotations : annotation list;
}

val data_of_json : Engine.Json.t -> (data, string) result

val data_of_body : string -> (data, string) result
(** Parse + decode one [/query] response body. *)

val fetch :
  ?host:string -> port:int -> query:string -> unit -> (data, string) result
(** [GET /query?<query>] against a running daemon and decode the body.
    [query] is the already-encoded query string (may be [""]). *)

val find_series : data -> string -> series option

val values : series -> float option array
(** Per-bucket scalar view of a series: a counter bucket becomes a rate
    ([sum /. step] per second), a gauge bucket its [last] sample. *)

val latest : float option array -> float option
(** The newest non-empty bucket's value. *)

val sparkline : ?width:int -> float option array -> string
(** Unicode block sparkline (▁▂▃▄▅▆▇█) scaled to the array's own max;
    empty buckets render as spaces.  When [width] (default [24]) is
    smaller than the array, only the newest [width] buckets are drawn. *)

val health_badge : ?color:bool -> string -> string
(** [● healthy] / [◐ degraded] / [✖ violating], ANSI-colored when
    [color] (green / yellow / red). *)

val render_top : ?color:bool -> data -> string
(** One dashboard frame: a header line (sim time, uptime, series count,
    fixed memory bound), a per-tenant table — health badge, throughput
    (pkt/s), drops (pkt/s), delay p99, fast-burn — each with a
    sparkline over the queried window — and the most recent annotations.
    Ends with a newline. *)

val render_report : ?top_n:int -> data -> string
(** Incident post-mortem over the queried window: for every annotation,
    the before/after deltas of each series that moved — bucket means
    over up to 5 buckets on each side of the incident — ranked by
    symmetric relative change, keeping the [top_n] (default [10])
    largest movers.  A window with no annotations says so explicitly. *)
