module T = Qvisor.Tenant

type config = {
  socket_path : string;
  http_port : int;
  tenants : T.t list;
  policy : Qvisor.Policy.t;
  levels : int option;
  seed : int;
  load : float;
  slice : float;
  drain_timeout : float;
  remediation : Remediation.config;
  telemetry : Engine.Telemetry.t;
  alerts : out_channel option;
  audit : out_channel option;
  inject_qdisc : (capacity_pkts:int -> Sched.Qdisc.t) option;
  pace : bool;  (* sleep the slice loop to wall-clock instead of free-running *)
  snapshot_interval : float;  (* simulated seconds between tsdb snapshots *)
}

(* The serving fabric is the paper's quick-scale leaf-spine evaluation
   topology; serving capacity scales with later roadmap items (intra-sim
   parallelism), not with daemon knobs. *)
let leaves = 2

let spines = 2

let hosts_per_leaf = 4

let access_rate = 1e9

let fabric_rate = 4e9

let link_delay = 1e-6

let queue_capacity_pkts = 100

let pfabric_unit_bytes = 1000

let edf_unit_seconds = 2e-5

let deadline_budget = 2e-3

let deadline_flow_bytes = 14_600 (* ten full payloads per deadline flow *)

let default_tenants =
  [
    T.make ~algorithm:"pfabric" ~rank_lo:0
      ~rank_hi:(30_000_000 / pfabric_unit_bytes)
      ~id:0 ~name:"pfabric" ();
    T.make ~algorithm:"edf" ~rank_lo:0
      ~rank_hi:(int_of_float (1.5 *. deadline_budget /. edf_unit_seconds))
      ~id:1 ~name:"edf" ();
  ]

let default_config =
  {
    socket_path = "qvisor.sock";
    http_port = 0;
    tenants = default_tenants;
    policy = Qvisor.Policy.parse_exn "edf >> pfabric";
    levels = None;
    seed = 1;
    load = 0.3;
    slice = 0.01;
    drain_timeout = 0.5;
    remediation = Remediation.default_config;
    telemetry = Engine.Telemetry.create ();
    alerts = None;
    audit = None;
    inject_qdisc = None;
    pace = false;
    snapshot_interval = 1.0;
  }

type conn = {
  fd : Unix.file_descr;
  kind : [ `Ctl | `Http ];
  mutable pending : string;
  mutable closed : bool;
}

type t = {
  config : config;
  sim : Engine.Sim.t;
  transport : Netsim.Transport.t;
  net : Netsim.Net.t;
  runtime : Qvisor.Runtime.t;
  auditor : Qvisor.Slo.t ref;
  health : Engine.Health.t;
  remediation : Remediation.t;
  rng : Engine.Rng.t;
  tel : Engine.Telemetry.t;
  tsdb : Engine.Tsdb.t;
  started_wall : float;
  mutable next_snapshot : float;
  num_hosts : int;
  traffic : (int, bool ref) Hashtbl.t;  (* tenant id -> arrivals-alive flag *)
  ctl_listen : Unix.file_descr;
  http_listen : Unix.file_descr;
  bound_port : int;
  mutable conns : conn list;
  mutable draining : bool;
  mutable stopping : bool;
  mutable remediations : int;
}

let epoch t = Qvisor.Runtime.resyntheses t.runtime + 1

let sim_time t = Engine.Sim.now t.sim

let tsdb t = t.tsdb

let uptime_seconds t = Unix.gettimeofday () -. t.started_wall

let http_port t = t.bound_port

let socket_path t = t.config.socket_path

let stop t = t.stopping <- true

(* ------------------------------------------------------------------ *)
(* SLO plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let envelopes tenants ~load =
  let sigma = float_of_int (queue_capacity_pkts * 1518) in
  List.map
    (fun tn ->
      ( tn.T.id,
        Qvisor.Latency.envelope ~sigma ~rho:(load *. access_rate /. 8.) ))
    tenants

let make_auditor runtime ~load =
  let plan = Qvisor.Runtime.plan runtime in
  let tenants = Qvisor.Runtime.tenants runtime in
  let objectives =
    Qvisor.Slo.derive ~plan ~envelopes:(envelopes tenants ~load)
      ~link_rate:access_rate ()
  in
  Qvisor.Slo.create ~objectives ()

let rebuild_slo t = t.auditor := make_auditor t.runtime ~load:t.config.load

let health_severity = function
  | Engine.Health.Healthy -> 0.
  | Engine.Health.Degraded -> 1.
  | Engine.Health.Violating -> 2.

let mirror t (tn : T.t) =
  if Engine.Telemetry.is_enabled t.tel then begin
    let id = tn.T.id in
    (match Qvisor.Slo.status !(t.auditor) ~tenant_id:id with
    | None -> ()
    | Some st ->
      let set name v =
        Engine.Telemetry.Gauge.set
          (Engine.Telemetry.gauge t.tel
             (Printf.sprintf "slo.tenant.%d.%s" id name))
          v
      in
      set "fast_burn" st.Qvisor.Slo.fast_burn;
      set "slow_burn" st.Qvisor.Slo.slow_burn;
      set "budget_remaining" st.Qvisor.Slo.budget_remaining;
      set "delay_quantile_seconds" st.Qvisor.Slo.observed_delay);
    Engine.Telemetry.Gauge.set
      (Engine.Telemetry.gauge t.tel (Printf.sprintf "health.tenant.%d.state" id))
      (health_severity (Engine.Health.state t.health ~id))
  end

(* ------------------------------------------------------------------ *)
(* Retention store                                                     *)
(* ------------------------------------------------------------------ *)

let annotate t ~kind ?tenant ~detail () =
  Engine.Tsdb.annotate t.tsdb ~time:(Engine.Sim.now t.sim) ~kind ?tenant ~detail
    ()

(* One snapshot folds the entire live registry into the retention store:
   every exported counter (cumulative, converted to increments inside
   Tsdb), every gauge, and the p50/p99/count of every histogram. *)
let snapshot t =
  let now = Engine.Sim.now t.sim in
  let obs kind name v =
    Engine.Tsdb.observe t.tsdb (Engine.Tsdb.series t.tsdb ~kind name) ~time:now v
  in
  List.iter
    (fun (name, v) -> obs Engine.Tsdb.Counter name (float_of_int v))
    (Engine.Telemetry.exported_counters t.tel);
  List.iter
    (fun (name, v) -> obs Engine.Tsdb.Gauge name v)
    (Engine.Telemetry.exported_gauges t.tel);
  List.iter
    (fun (name, h) ->
      let count = Engine.Telemetry.Histogram.count h in
      obs Engine.Tsdb.Counter (name ^ ".count") (float_of_int count);
      if count > 0 then begin
        obs Engine.Tsdb.Gauge (name ^ ".p50")
          (Engine.Telemetry.Histogram.quantile h 0.5);
        obs Engine.Tsdb.Gauge (name ^ ".p99")
          (Engine.Telemetry.Histogram.quantile h 0.99)
      end)
    (Engine.Telemetry.exported_histograms t.tel)

let audit_line t json =
  match t.config.audit with
  | None -> ()
  | Some oc ->
    output_string oc (Engine.Json.to_string json);
    output_char oc '\n';
    flush oc

let execute_remediation t (tn : T.t) ~attempt ~action ~now =
  let result =
    match (action : Remediation.action) with
    | Remediation.Refresh -> Qvisor.Runtime.refresh t.runtime
    | Remediation.Coarsen { levels } -> Qvisor.Runtime.coarsen t.runtime ~levels
  in
  (match result with
  | Ok () ->
    t.remediations <- t.remediations + 1;
    rebuild_slo t
  | Error _ -> ());
  annotate t ~kind:"remediation" ~tenant:tn.T.name
    ~detail:
      (Printf.sprintf "attempt %d: %s (%s)" attempt
         (Remediation.action_to_string action)
         (match result with Ok () -> "applied" | Error _ -> "failed"))
    ();
  audit_line t
    (Remediation.audit_record ~now ~id:tn.T.id ~name:tn.T.name ~attempt
       ~action ~result ~epoch:(epoch t))

let tick t =
  let now = Engine.Sim.now t.sim in
  List.iter
    (fun (tn : T.t) ->
      let id = tn.T.id in
      let signal, detail = Qvisor.Slo.evaluate !(t.auditor) ~tenant_id:id in
      Engine.Health.observe t.health ~id ~time:now ~source:"slo" ~detail signal;
      let state = Engine.Health.state t.health ~id in
      (match
         Remediation.observe t.remediation ~id ~now
           ~levels:(Qvisor.Runtime.config t.runtime).Qvisor.Synthesizer.levels
           state
       with
      | Remediation.Hold -> ()
      | Remediation.Fire { attempt; action } ->
        execute_remediation t tn ~attempt ~action ~now);
      mirror t tn)
    (Qvisor.Runtime.tenants t.runtime)

(* ------------------------------------------------------------------ *)
(* Traffic                                                            *)
(* ------------------------------------------------------------------ *)

let deadline_driven (tn : T.t) =
  match tn.T.algorithm with "edf" | "lstf" -> true | _ -> false

let ranker_for (tn : T.t) =
  match tn.T.algorithm with
  | "pfabric" | "srpt" -> Sched.Ranker.pfabric ~unit_bytes:pfabric_unit_bytes ()
  | "edf" ->
    Sched.Ranker.edf ~unit_seconds:edf_unit_seconds
      ~horizon:(1.5 *. deadline_budget) ()
  | "lstf" -> Sched.Ranker.lstf ~line_rate:access_rate ()
  | "stfq" -> Sched.Ranker.stfq ()
  | "fifo_plus" | "fifo+" -> Sched.Ranker.fifo_plus ()
  | _ -> Sched.Ranker.fifo ()

let start_traffic t (tn : T.t) =
  let id = tn.T.id in
  let active = ref true in
  Hashtbl.replace t.traffic id active;
  let rng = Engine.Rng.split t.rng in
  let ranker = ranker_for tn in
  let deadline = deadline_driven tn in
  let dist = Netsim.Workload.data_mining () in
  let mean_size =
    if deadline then float_of_int deadline_flow_bytes
    else Engine.Rng.Empirical.mean dist
  in
  let rate =
    Netsim.Workload.flow_arrival_rate ~load:t.config.load
      ~num_hosts:t.num_hosts ~access_rate ~mean_flow_size:mean_size
  in
  let completed =
    Engine.Telemetry.counter t.tel
      (Printf.sprintf "daemon.tenant.%d.flows_completed" id)
  in
  let started =
    Engine.Telemetry.counter t.tel
      (Printf.sprintf "daemon.tenant.%d.flows_started" id)
  in
  let rec arrival () =
    if !active && not t.draining && not t.stopping then begin
      let src, dst = Engine.Rng.pair_distinct rng ~n:t.num_hosts in
      let size =
        if deadline then deadline_flow_bytes
        else max 1 (int_of_float (Engine.Rng.Empirical.sample dist rng))
      in
      let deadline_at =
        if deadline then
          Some
            (Engine.Sim.now t.sim
            +. deadline_budget *. Engine.Rng.float_range rng ~lo:0.5 ~hi:1.5)
        else None
      in
      ignore
        (Netsim.Transport.start_flow t.transport ~tenant:id ~ranker ~src ~dst
           ~size ?deadline:deadline_at
           ~on_complete:(fun _ -> Engine.Telemetry.Counter.incr completed)
           ());
      Engine.Telemetry.Counter.incr started;
      Engine.Sim.schedule_after_ t.sim
        ~delay:(Engine.Rng.exponential rng ~mean:(1. /. rate))
        arrival
    end
  in
  Engine.Sim.schedule_after_ t.sim
    ~delay:(Engine.Rng.exponential rng ~mean:(1. /. rate))
    arrival

let stop_traffic t ~tenant_id =
  match Hashtbl.find_opt t.traffic tenant_id with
  | None -> ()
  | Some active ->
    active := false;
    Hashtbl.remove t.traffic tenant_id

(* ------------------------------------------------------------------ *)
(* Control plane                                                      *)
(* ------------------------------------------------------------------ *)

let names tenants = List.map (fun tn -> tn.T.name) tenants

let status t =
  {
    Proto.epoch = epoch t;
    sim_time = Engine.Sim.now t.sim;
    uptime_seconds = uptime_seconds t;
    draining = t.draining;
    policy = Qvisor.Policy.to_string (Qvisor.Runtime.policy t.runtime);
    tenants =
      List.map
        (fun (tn : T.t) ->
          {
            Proto.ts_id = tn.T.id;
            ts_name = tn.T.name;
            ts_algorithm = tn.T.algorithm;
            ts_health = Engine.Health.state t.health ~id:tn.T.id;
          })
        (Qvisor.Runtime.tenants t.runtime);
    resyntheses = Qvisor.Runtime.resyntheses t.runtime;
    remediations = t.remediations;
    tsdb_series = Engine.Tsdb.series_count t.tsdb;
    tsdb_memory_bytes = Engine.Tsdb.memory_bytes t.tsdb;
  }

let unavailable op =
  Error
    (Qvisor.Error.Unavailable
       (Printf.sprintf "daemon is draining; %s refused" op))

let handle_request t (req : Proto.request) : Proto.outcome =
  match req with
  | Proto.Status -> Ok (Proto.Status_reply (status t))
  | Proto.Drain ->
    t.draining <- true;
    Ok Proto.Draining
  | Proto.Shutdown ->
    t.stopping <- true;
    Ok Proto.Shutting_down
  | Proto.Tenant_add _ when t.draining -> unavailable "tenant-add"
  | Proto.Tenant_remove _ when t.draining -> unavailable "tenant-remove"
  | Proto.Policy_update _ when t.draining -> unavailable "policy-update"
  | Proto.Tenant_add { tenant; policy } -> (
    let current = Qvisor.Runtime.tenants t.runtime in
    if List.exists (fun x -> x.T.name = tenant.T.name) current then
      Error
        (Qvisor.Error.Config
           (Printf.sprintf "tenant name %S already present" tenant.T.name))
    else
      let policy' =
        Option.value policy ~default:(Qvisor.Runtime.policy t.runtime)
      in
      match
        Qvisor.Policy.validate policy' ~known:(names (current @ [ tenant ]))
      with
      | Error e -> Error e
      | Ok () -> (
        (* Runtime.add_tenant synthesizes the extended plan off to the
           side and swaps only on success: admission is atomic. *)
        match Qvisor.Runtime.add_tenant t.runtime tenant ?policy () with
        | Error e -> Error e
        | Ok () ->
          rebuild_slo t;
          Engine.Health.watch t.health ~id:tenant.T.id ~name:tenant.T.name;
          start_traffic t tenant;
          mirror t tenant;
          Ok (Proto.Added { epoch = epoch t })))
  | Proto.Tenant_remove { tenant_id; policy } -> (
    match Qvisor.Runtime.remove_tenant t.runtime ~tenant_id ?policy () with
    | Error e -> Error e
    | Ok () ->
      stop_traffic t ~tenant_id;
      Engine.Health.unwatch t.health ~id:tenant_id;
      Remediation.forget t.remediation ~id:tenant_id;
      rebuild_slo t;
      Ok (Proto.Removed { epoch = epoch t }))
  | Proto.Policy_update policy -> (
    let current = Qvisor.Runtime.tenants t.runtime in
    match Qvisor.Policy.validate policy ~known:(names current) with
    | Error e -> Error e
    | Ok () -> (
      match Qvisor.Runtime.update_policy t.runtime policy with
      | Error e -> Error e
      | Ok () ->
        rebuild_slo t;
        Ok (Proto.Updated { epoch = epoch t })))

(* ------------------------------------------------------------------ *)
(* Scrape surface                                                     *)
(* ------------------------------------------------------------------ *)

let build_version = "0.9.0"

let metrics_body t =
  let tenants = Qvisor.Runtime.tenants t.runtime in
  let tenant_names = List.map (fun tn -> (tn.T.id, tn.T.name)) tenants in
  let live =
    List.concat_map (fun tn -> [ tn.T.name; string_of_int tn.T.id ]) tenants
  in
  (* The registry keeps counters of departed tenants forever (monotonic by
     contract); the scrape surface only shows the serving population. *)
  let keep (s : Engine.Exposition.sample) =
    match List.assoc_opt "tenant" s.Engine.Exposition.labels with
    | None -> true
    | Some v -> List.mem v live
  in
  let families =
    Engine.Exposition.families_of_registry ~tenant_names t.tel
    |> List.filter_map (fun (f : Engine.Exposition.family) ->
           match List.filter keep f.Engine.Exposition.samples with
           | [] -> None
           | samples -> Some { f with Engine.Exposition.samples })
  in
  let gauge name help value =
    Engine.Exposition.family ~name ~help Engine.Exposition.Gauge
      [ { Engine.Exposition.sample_name = name; labels = []; value } ]
  in
  let extra =
    [
      gauge "qvisor_epoch" "plan generation (1 + resyntheses)"
        (float_of_int (epoch t));
      gauge "qvisor_daemon_draining" "1 while draining, else 0"
        (if t.draining then 1. else 0.);
      gauge "qvisor_uptime_seconds" "wall-clock seconds since daemon start"
        (uptime_seconds t);
      Engine.Exposition.family ~name:"qvisor_build_info"
        ~help:"build metadata; the value is always 1" Engine.Exposition.Gauge
        [
          {
            Engine.Exposition.sample_name = "qvisor_build_info";
            labels =
              [ ("version", build_version); ("ocaml_version", Sys.ocaml_version) ];
            value = 1.;
          };
        ];
      gauge "qvisor_tsdb_series" "retention-store series interned"
        (float_of_int (Engine.Tsdb.series_count t.tsdb));
      gauge "qvisor_tsdb_memory_bytes"
        "retention-store ring footprint (fixed per series)"
        (float_of_int (Engine.Tsdb.memory_bytes t.tsdb));
      Engine.Exposition.family ~name:"qvisor_remediations_total"
        ~help:"remediation actions applied" Engine.Exposition.Counter
        [
          {
            Engine.Exposition.sample_name = "qvisor_remediations_total";
            labels = [];
            value = float_of_int t.remediations;
          };
        ];
    ]
  in
  Engine.Exposition.render_families
    (families @ extra @ [ Engine.Exposition.scrape_timestamp_family () ])

let healthz_body t =
  let worst = Engine.Health.worst t.health in
  ( Engine.Health.state_to_string worst ^ "\n",
    worst <> Engine.Health.Violating )

(* ------------------------------------------------------------------ *)
(* Range query surface                                                *)
(* ------------------------------------------------------------------ *)

(* ['*'] matches any substring, everything else is literal — enough to
   select e.g. [net.tenant.*.drop] without a regex engine. *)
let glob_match ~pattern name =
  let pl = String.length pattern and nl = String.length name in
  let rec go p n =
    if p = pl then n = nl
    else
      match pattern.[p] with
      | '*' -> go (p + 1) n || (n < nl && go p (n + 1))
      | c -> n < nl && name.[n] = c && go (p + 1) (n + 1)
  in
  go 0 0

(* The dotted registry names carry tenant ids inline: [net.tenant.3.drop],
   [slo.tenant.3.fast_burn].  Pull the id back out so /query can filter
   and label per tenant. *)
let tenant_id_of_series name =
  let n = String.length name in
  let rec find i =
    if i + 7 > n then None
    else if
      (i = 0 || name.[i - 1] = '.') && String.sub name i 7 = "tenant."
    then begin
      let j = ref (i + 7) in
      while !j < n && name.[!j] >= '0' && name.[!j] <= '9' do
        incr j
      done;
      if !j > i + 7 && (!j = n || name.[!j] = '.') then
        int_of_string_opt (String.sub name (i + 7) (!j - i - 7))
      else find (i + 1)
    end
    else find (i + 1)
  in
  find 0

let query_body t params =
  let module J = Engine.Json in
  let ( let* ) = Result.bind in
  let now = Engine.Tsdb.last_time t.tsdb in
  let float_param name ~default =
    match List.assoc_opt name params with
    | None | Some "" -> Ok default
    | Some v -> (
      match float_of_string_opt v with
      | Some f when Float.is_finite f -> Ok f
      | _ -> Error (Printf.sprintf "parameter %S is not a number: %S" name v))
  in
  let* start = float_param "start" ~default:(-60.) in
  let* stop = float_param "end" ~default:0. in
  let* step = float_param "step" ~default:0. in
  (* start/end at or below zero are relative to the newest sample, so
     [?start=-60] is always "the last minute". *)
  let absolute v = if v <= 0. then Float.max 0. (now +. v) else v in
  let start = absolute start in
  let stop = absolute stop in
  let stop = if stop <= start then start +. 1. else stop in
  let tenants = Qvisor.Runtime.tenants t.runtime in
  let name_of_id id =
    List.find_opt (fun (tn : T.t) -> tn.T.id = id) tenants
    |> Option.map (fun (tn : T.t) -> tn.T.name)
  in
  let* tenant_id =
    match List.assoc_opt "tenant" params with
    | None | Some "" -> Ok None
    | Some name -> (
      match List.find_opt (fun (tn : T.t) -> tn.T.name = name) tenants with
      | Some tn -> Ok (Some tn.T.id)
      | None -> Error (Printf.sprintf "unknown tenant %S" name))
  in
  let pattern =
    match List.assoc_opt "series" params with
    | None | Some "" -> "*"
    | Some p -> p
  in
  let selected =
    Engine.Tsdb.names t.tsdb
    |> List.filter (fun (name, _) ->
           glob_match ~pattern name
           &&
           match tenant_id with
           | None -> true
           | Some id -> tenant_id_of_series name = Some id)
  in
  let step_opt = if step > 0. then Some step else None in
  let series_json =
    List.filter_map
      (fun (name, _) ->
        match Engine.Tsdb.query t.tsdb ~name ~start ~stop ?step:step_opt () with
        | None -> None
        | Some r ->
          let tenant = Option.bind (tenant_id_of_series name) name_of_id in
          let points =
            Array.to_list r.Engine.Tsdb.r_points
            |> List.map (function
                 | None -> J.Null
                 | Some (p : Engine.Tsdb.point) ->
                   J.List
                     [
                       J.Number (float_of_int p.Engine.Tsdb.p_count);
                       J.Number p.Engine.Tsdb.p_sum;
                       J.Number p.Engine.Tsdb.p_min;
                       J.Number p.Engine.Tsdb.p_max;
                       J.Number p.Engine.Tsdb.p_last;
                     ])
          in
          Some
            (J.Obj
               [
                 ("name", J.String name);
                 ( "kind",
                   J.String (Engine.Tsdb.kind_to_string r.Engine.Tsdb.r_kind) );
                 ( "tenant",
                   match tenant with Some s -> J.String s | None -> J.Null );
                 ("start", J.Number r.Engine.Tsdb.r_start);
                 ("step", J.Number r.Engine.Tsdb.r_step);
                 ("points", J.List points);
               ]))
      selected
  in
  (* Annotation window widened by a relative epsilon so an incident
     stamped exactly at the newest sample still shows up. *)
  let ann_stop = stop +. (1e-9 *. (1. +. Float.abs stop)) in
  let annotations =
    Engine.Tsdb.annotations ~start ~stop:ann_stop t.tsdb
    |> List.map (fun (a : Engine.Tsdb.annotation) ->
           J.Obj
             [
               ("t", J.Number a.Engine.Tsdb.a_time);
               ("kind", J.String a.Engine.Tsdb.a_kind);
               ( "tenant",
                 match a.Engine.Tsdb.a_tenant with
                 | Some s -> J.String s
                 | None -> J.Null );
               ("detail", J.String a.Engine.Tsdb.a_detail);
             ])
  in
  let tenants_json =
    List.map
      (fun (tn : T.t) ->
        J.Obj
          [
            ("id", J.Number (float_of_int tn.T.id));
            ("name", J.String tn.T.name);
            ("algorithm", J.String tn.T.algorithm);
            ( "health",
              J.String
                (Engine.Health.state_to_string
                   (Engine.Health.state t.health ~id:tn.T.id)) );
          ])
      tenants
  in
  Ok
    (J.to_string
       (J.Obj
          [
            ("now", J.Number now);
            ("sim_time", J.Number (Engine.Sim.now t.sim));
            ("uptime_seconds", J.Number (uptime_seconds t));
            ("start", J.Number start);
            ("end", J.Number stop);
            ("series_count", J.Number (float_of_int (Engine.Tsdb.series_count t.tsdb)));
            ( "memory_bytes",
              J.Number (float_of_int (Engine.Tsdb.memory_bytes t.tsdb)) );
            ( "per_series_bytes",
              J.Number (float_of_int (Engine.Tsdb.per_series_bytes t.tsdb)) );
            ("tenants", J.List tenants_json);
            ("series", J.List series_json);
            ("annotations", J.List annotations);
          ])
    ^ "\n")

(* ------------------------------------------------------------------ *)
(* Sockets                                                            *)
(* ------------------------------------------------------------------ *)

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ fd ] [] 0.05);
      write_all fd s off len
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let send fd s = write_all fd s 0 (String.length s)

let close_conn c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let bind_control path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 16;
     Unix.set_nonblock fd;
     Ok fd
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Error
       (Qvisor.Error.Config
          (Printf.sprintf "cannot bind control socket %s: %s" path
             (Unix.error_message err))))

let bind_http port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 16;
    Unix.set_nonblock fd;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    in
    Ok (fd, bound)
  with Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Qvisor.Error.Config
         (Printf.sprintf "cannot bind http port %d: %s" port
            (Unix.error_message err)))

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let rec process_control_lines t c =
  if not c.closed then
    match String.index_opt c.pending '\n' with
    | None -> ()
    | Some i ->
      let line = strip_cr (String.sub c.pending 0 i) in
      c.pending <-
        String.sub c.pending (i + 1) (String.length c.pending - i - 1);
      if line <> "" then begin
        let outcome =
          match Proto.parse_request line with
          | Error e -> Error e
          | Ok req -> handle_request t req
        in
        try send c.fd (Proto.outcome_line outcome)
        with Unix.Unix_error _ -> close_conn c
      end;
      process_control_lines t c

let serve_http t c =
  if Http.head_complete c.pending then begin
    let resp =
      match Http.parse_request c.pending with
      | Error e -> Http.bad_request e
      | Ok { Http.meth = "GET"; target } -> (
        match Http.split_target target with
        | "/metrics", _ -> Http.response (metrics_body t)
        | "/healthz", _ ->
          let body, ok = healthz_body t in
          if ok then Http.response ~content_type:"text/plain" body
          else
            Http.response ~status:503 ~reason:"Service Unavailable"
              ~content_type:"text/plain" body
        | "/query", params -> (
          match query_body t params with
          | Ok body -> Http.response ~content_type:"application/json" body
          | Error msg -> Http.bad_request msg)
        | _ -> Http.not_found)
      | Ok _ -> Http.method_not_allowed
    in
    (try send c.fd resp with Unix.Unix_error _ -> ());
    close_conn c
  end

let read_conn t c =
  let bytes = Bytes.create 4096 in
  match Unix.read c.fd bytes 0 4096 with
  | 0 -> close_conn c
  | n -> (
    c.pending <- c.pending ^ Bytes.sub_string bytes 0 n;
    match c.kind with
    | `Ctl -> process_control_lines t c
    | `Http -> serve_http t c)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (_, _, _) -> close_conn c

let rec accept_all t kind fd =
  match Unix.accept ~cloexec:true fd with
  | cfd, _ ->
    Unix.set_nonblock cfd;
    t.conns <- { fd = cfd; kind; pending = ""; closed = false } :: t.conns;
    accept_all t kind fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()

let poll t ~timeout =
  let fds =
    t.ctl_listen :: t.http_listen
    :: List.filter_map (fun c -> if c.closed then None else Some c.fd) t.conns
  in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
    if List.memq t.ctl_listen readable then accept_all t `Ctl t.ctl_listen;
    if List.memq t.http_listen readable then accept_all t `Http t.http_listen;
    List.iter
      (fun c -> if (not c.closed) && List.memq c.fd readable then read_conn t c)
      t.conns;
    t.conns <- List.filter (fun c -> not c.closed) t.conns

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let create config =
  let ( let* ) = Result.bind in
  let* () =
    if config.slice <= 0. then
      Error (Qvisor.Error.Config "slice must be positive")
    else if config.load <= 0. then
      Error (Qvisor.Error.Config "load must be positive")
    else if config.drain_timeout < 0. then
      Error (Qvisor.Error.Config "drain_timeout must be non-negative")
    else Ok ()
  in
  let synth_config =
    { Qvisor.Synthesizer.default_config with levels = config.levels }
  in
  let sim = Engine.Sim.create () in
  let* runtime =
    Qvisor.Runtime.create ~config:synth_config ~telemetry:config.telemetry
      ~clock:(fun () -> Engine.Sim.now sim)
      ~tenants:config.tenants ~policy:config.policy ()
  in
  let auditor = ref (make_auditor runtime ~load:config.load) in
  let tsdb = Engine.Tsdb.create () in
  let health =
    Engine.Health.create ?alerts:config.alerts
      ~on_transition:(fun (tr : Engine.Health.transition) ->
        Engine.Tsdb.annotate tsdb ~time:tr.Engine.Health.tr_time ~kind:"health"
          ~tenant:tr.Engine.Health.tr_name
          ~detail:
            (Printf.sprintf "%s: %s -> %s%s" tr.Engine.Health.tr_source
               (Engine.Health.state_to_string tr.Engine.Health.tr_from)
               (Engine.Health.state_to_string tr.Engine.Health.tr_to)
               (if tr.Engine.Health.tr_detail = "" then ""
                else ": " ^ tr.Engine.Health.tr_detail))
          ())
      ()
  in
  List.iter
    (fun tn -> Engine.Health.watch health ~id:tn.T.id ~name:tn.T.name)
    (Qvisor.Runtime.tenants runtime);
  let topo =
    Netsim.Topology.leaf_spine ~leaves ~spines ~hosts_per_leaf ~access_rate
      ~fabric_rate ~link_delay
  in
  let routing = Netsim.Routing.compute topo in
  let transport = Netsim.Transport.create ~sim () in
  let make_qdisc =
    match config.inject_qdisc with
    | Some f -> fun _ -> f ~capacity_pkts:queue_capacity_pkts
    | None ->
      fun _ ->
        Sched.Bucket_queue.create ~name:"pifo"
          ~capacity_pkts:queue_capacity_pkts ()
  in
  (* The recorder's trigger re-fires on every dump; one annotation per
     link per second is plenty for the incident track. *)
  let spike_last = Hashtbl.create 8 in
  let net =
    Netsim.Net.create ~sim ~topo ~routing ~make_qdisc
      ~flight:Netsim.Net.default_flight
      ~on_anomaly:(fun ~link_id _recorder ->
        let now = Engine.Sim.now sim in
        let rearmed =
          match Hashtbl.find_opt spike_last link_id with
          | Some t0 -> now -. t0 >= 1.0
          | None -> true
        in
        if rearmed then begin
          Hashtbl.replace spike_last link_id now;
          Engine.Tsdb.annotate tsdb ~time:now ~kind:"drop-spike"
            ~detail:
              (Printf.sprintf "flight-recorder trigger on link %d" link_id)
            ()
        end)
      ~preprocess:(Qvisor.Runtime.process runtime)
      ~on_enqueue:(fun p -> Qvisor.Slo.on_enqueue !auditor p)
      ~on_dequeue:(fun (p : Sched.Packet.t) ->
        Qvisor.Slo.on_delay !auditor ~tenant_id:p.Sched.Packet.tenant
          (Engine.Sim.now sim -. p.Sched.Packet.enqueued_at))
      ~on_drop:(fun p -> Qvisor.Slo.on_drop !auditor p)
      ~on_tie_inversion:(fun (p : Sched.Packet.t) ->
        Qvisor.Slo.on_tie_inversion !auditor
          ~tenant_id:p.Sched.Packet.tenant)
      ~telemetry:config.telemetry
      ~deliver:(Netsim.Transport.deliver transport)
      ()
  in
  Netsim.Transport.attach transport net;
  let* ctl_listen = bind_control config.socket_path in
  let* http_listen, bound_port =
    match bind_http config.http_port with
    | Ok v -> Ok v
    | Error e ->
      (try Unix.close ctl_listen with Unix.Unix_error _ -> ());
      (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
      Error e
  in
  let t =
    {
      config;
      sim;
      transport;
      net;
      runtime;
      auditor;
      health;
      remediation = Remediation.create ~config:config.remediation ();
      rng = Engine.Rng.create ~seed:config.seed;
      tel = config.telemetry;
      tsdb;
      started_wall = Unix.gettimeofday ();
      next_snapshot = 0.;
      num_hosts = leaves * hosts_per_leaf;
      traffic = Hashtbl.create 8;
      ctl_listen;
      http_listen;
      bound_port;
      conns = [];
      draining = false;
      stopping = false;
      remediations = 0;
    }
  in
  List.iter (fun tn -> start_traffic t tn) (Qvisor.Runtime.tenants runtime);
  List.iter (fun tn -> mirror t tn) (Qvisor.Runtime.tenants runtime);
  Ok t

let cleanup t =
  List.iter close_conn t.conns;
  t.conns <- [];
  (try Unix.close t.ctl_listen with Unix.Unix_error _ -> ());
  (try Unix.close t.http_listen with Unix.Unix_error _ -> ());
  (try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ());
  Option.iter flush t.config.alerts;
  Option.iter flush t.config.audit

let serve t =
  (* Pacing anchor: the wall instant at which simulated time 0 "happened".
     Serving stays ahead of this clock only by the unserved slice. *)
  let wall0 = Unix.gettimeofday () -. Engine.Sim.now t.sim in
  while not t.stopping do
    let target = Engine.Sim.now t.sim +. t.config.slice in
    Engine.Sim.run ~until:target t.sim;
    tick t;
    let now = Engine.Sim.now t.sim in
    if now >= t.next_snapshot then begin
      snapshot t;
      t.next_snapshot <- now +. t.config.snapshot_interval
    end;
    if t.config.pace then begin
      (* Sleep inside [poll] until the wall clock catches up to the
         simulated clock, so pacing never starves the control plane. *)
      let rec pace_wait () =
        let ahead = wall0 +. Engine.Sim.now t.sim -. Unix.gettimeofday () in
        if ahead > 0. && not t.stopping then begin
          poll t ~timeout:(Float.min ahead 0.05);
          pace_wait ()
        end
      in
      pace_wait ();
      poll t ~timeout:0.
    end
    else poll t ~timeout:0.002
  done;
  (* Drain-out: give in-flight flows up to [drain_timeout] simulated
     seconds to land before tearing the fabric down. *)
  let deadline = Engine.Sim.now t.sim +. t.config.drain_timeout in
  let rec drain () =
    if
      Netsim.Transport.active_flows t.transport > 0
      && Engine.Sim.now t.sim < deadline
    then begin
      let before = Engine.Sim.now t.sim in
      Engine.Sim.run
        ~until:(Float.min deadline (before +. t.config.slice))
        t.sim;
      if Engine.Sim.now t.sim > before then drain ()
    end
  in
  drain ();
  cleanup t
