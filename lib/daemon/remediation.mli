(** SLO-driven auto-remediation: decide {e when} a violating tenant earns
    a guarded resynthesis, and {e what} to try.

    Pure and clock-agnostic (time comes in through [now]), so the
    hysteresis is unit-testable without a daemon.  Per tenant:

    - the first attempt fires as soon as the tenant is [Violating] (the
      health machine's strike hysteresis already debounced the signal);
      each subsequent attempt is gated by a {e cooldown} that grows
      exponentially ([cooldown * factor^(attempt-1)], capped at
      [backoff_max]) — a persistently violating tenant is retried more
      and more reluctantly;
    - the attempt counter resets only after the tenant has been
      continuously [Healthy] for [recovery] seconds.  A tenant that
      alternates healthy/violating faster than that keeps climbing the
      backoff ladder instead of re-triggering eagerly: remediation can
      never flap in step with a flapping signal.

    The action ladder is the paper-faithful fallback chain: first
    re-synthesize from {e observed} rank ranges ({!Qvisor.Runtime.refresh}
    — the paper's "latest packets" adaptation), then progressively halve
    the quantization resolution ({!Qvisor.Runtime.coarsen}) so every
    tenant still fits a deployable plan. *)

type config = {
  cooldown : float;  (** base seconds between attempts *)
  backoff_factor : float;  (** per-attempt multiplier (>= 1) *)
  backoff_max : float;  (** ceiling on the per-attempt cooldown *)
  recovery : float;
      (** continuous healthy seconds that reset the attempt counter *)
}

val default_config : config
(** [{cooldown = 5.; backoff_factor = 2.; backoff_max = 300.;
     recovery = 30.}] (in served sim-seconds). *)

type action =
  | Refresh  (** re-synthesize from observed rank ranges *)
  | Coarsen of { levels : int }  (** quantization fallback *)

val action_to_string : action -> string

type decision = Hold | Fire of { attempt : int; action : action }

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on a non-positive [cooldown]/[recovery],
    [backoff_factor < 1], or [backoff_max < cooldown]. *)

val observe :
  t -> id:int -> now:float -> levels:int option -> Engine.Health.state -> decision
(** Fold one health evaluation for tenant [id] at time [now].  [levels]
    is the plan's current quantization resolution ([None] = full), used
    to pick the next [Coarsen] step.  Returns [Fire] at most once per
    (backed-off) cooldown window, and only for [Violating]. *)

val attempts : t -> id:int -> int
(** Attempts fired since the last recovery reset. *)

val forget : t -> id:int -> unit
(** Drop the tenant's remediation state (tenant removed). *)

val audit_record :
  now:float ->
  id:int ->
  name:string ->
  attempt:int ->
  action:action ->
  result:(unit, Qvisor.Error.t) result ->
  epoch:int ->
  Engine.Json.t
(** One NDJSON audit line:
    [{"t":..,"tenant":..,"name":..,"attempt":..,"action":"refresh",
      "result":"ok","epoch":..}] with an ["error"] object on failure. *)
