(** A deliberately minimal HTTP/1.1 responder for the daemon's scrape
    surface.

    Only what a Prometheus scraper (or [curl]) needs: parse the request
    line out of a received head, format a [Connection: close] response.
    The socket shuffling lives in {!Server}; everything here is pure and
    unit-testable. *)

type request = { meth : string; target : string }

val head_complete : string -> bool
(** Whether the buffered bytes contain the end-of-head marker
    ([CRLF CRLF], or bare [LF LF] from sloppy clients). *)

val parse_request : string -> (request, string) result
(** Parse the request line of a received head: method and target,
    HTTP version checked to be [HTTP/1.x].  Headers are ignored — the
    daemon serves only bodyless [GET]s. *)

val response :
  ?status:int -> ?reason:string -> ?content_type:string -> string -> string
(** A full response with [Content-Length] and [Connection: close]
    (default status [200 OK], content type [text/plain; version=0.0.4]
    — the Prometheus exposition type). *)

val not_found : string
(** A canned [404] for unknown paths. *)

val method_not_allowed : string
(** A canned [405] for anything but [GET]. *)

val bad_request : string -> string
(** A canned [400] carrying the parse error. *)
