(** A deliberately minimal HTTP/1.1 responder for the daemon's scrape
    surface.

    Only what a Prometheus scraper (or [curl]) needs: parse the request
    line out of a received head, format a [Connection: close] response.
    The socket shuffling lives in {!Server}; everything here is pure and
    unit-testable. *)

type request = { meth : string; target : string }

val head_complete : string -> bool
(** Whether the buffered bytes contain the end-of-head marker
    ([CRLF CRLF], or bare [LF LF] from sloppy clients). *)

val parse_request : string -> (request, string) result
(** Parse the request line of a received head: method and target,
    HTTP version checked to be [HTTP/1.x].  Headers are ignored — the
    daemon serves only bodyless [GET]s. *)

val percent_decode : string -> string
(** URL percent-decoding ([%41] → [A], [+] → space); malformed escapes
    pass through literally. *)

val split_target : string -> string * (string * string) list
(** Split a request target into its path and decoded query parameters:
    [split_target "/query?series=net.%2A&step=5" =
    ("/query", [("series", "net.*"); ("step", "5")])]. *)

val response :
  ?status:int -> ?reason:string -> ?content_type:string -> string -> string
(** A full response with [Content-Length] and [Connection: close]
    (default status [200 OK], content type [text/plain; version=0.0.4]
    — the Prometheus exposition type). *)

val not_found : string
(** A canned [404] for unknown paths. *)

val method_not_allowed : string
(** A canned [405] for anything but [GET]. *)

val bad_request : string -> string
(** A canned [400] carrying the parse error. *)

val get :
  ?host:string -> port:int -> string -> (int * string, string) result
(** A blocking one-shot [GET] against [host] (default [127.0.0.1]):
    connect, send, read to EOF (the daemon speaks [Connection: close]),
    return [(status, body)].  [Error] carries the socket-level failure —
    this is the client side used by [qvisor-cli top] and [report]. *)
