(** The `qvisor serve` daemon: a persistent scheduling hypervisor.

    One single-threaded event loop alternates between

    - advancing a continuous netsim simulation by one [slice] of
      simulated time (per-tenant Poisson traffic through the synthesized
      plan, SLO auditing, health evaluation, auto-remediation), and
    - polling two listening sockets: the line-oriented JSON control
      socket ({!Proto}, Unix-domain) and a minimal HTTP scrape surface
      ([GET /metrics], [GET /healthz]).

    Control-plane mutations go through the admission pipeline: validate
    the request, re-synthesize {e off to the side}, and only then swap
    the plan ({!Qvisor.Runtime}'s redeploy is atomic), bumping the epoch.
    A bad policy or an unsatisfiable tenant never takes down the serving
    plan — the requester gets the typed error, everyone else keeps their
    bands.

    When {!Engine.Health} judges a tenant [Violating], {!Remediation}
    decides whether to fire a guarded resynthesis (observed-range refresh
    first, then quantization coarsening), with every attempt appended to
    the NDJSON audit sink. *)

type config = {
  socket_path : string;  (** control socket (unlinked and re-bound) *)
  http_port : int;  (** TCP port on 127.0.0.1; [0] picks an ephemeral one *)
  tenants : Qvisor.Tenant.t list;  (** initial population *)
  policy : Qvisor.Policy.t;
  levels : int option;  (** synthesizer quantization *)
  seed : int;
  load : float;  (** per-tenant offered load on the aggregate access capacity *)
  slice : float;  (** simulated seconds per serve-loop iteration *)
  drain_timeout : float;
      (** max simulated seconds to let in-flight flows finish at shutdown *)
  remediation : Remediation.config;
  telemetry : Engine.Telemetry.t;  (** live registry backing [/metrics] *)
  alerts : out_channel option;  (** health-transition NDJSON sink *)
  audit : out_channel option;  (** remediation NDJSON sink *)
  inject_qdisc : (capacity_pkts:int -> Sched.Qdisc.t) option;
      (** fault injection: overrides every port's scheduler (tests / the
          worked EXPERIMENTS session wire {!Conformance.Fault} in here) *)
  pace : bool;
      (** pace the slice loop to the wall clock (1 simulated second per
          real second) instead of free-running; the waiting happens
          inside [select], so the control plane stays responsive *)
  snapshot_interval : float;
      (** simulated seconds between retention-store snapshots of the
          whole registry (default [1.0]) *)
}

val default_config : config
(** Quick-scale fabric (2 leaves x 2 spines x 4 hosts/leaf at 1 Gb/s
    access), [socket_path = "qvisor.sock"], ephemeral HTTP port, the
    paper's two tenants under ["edf >> pfabric"], 10 ms slices,
    [load = 0.3], telemetry enabled. *)

type t

val create : config -> (t, Qvisor.Error.t) result
(** Synthesize the initial plan, build the fabric, bind both sockets.
    No traffic runs and no request is served until {!serve}. *)

val serve : t -> unit
(** Run the event loop until a [shutdown] request or {!stop}.  Closes and
    unlinks the sockets, flushes the sinks, and (for up to
    [drain_timeout] simulated seconds) lets in-flight flows finish on the
    way out. *)

val stop : t -> unit
(** Request the loop to exit; safe to call from a signal handler or
    another thread. *)

val http_port : t -> int
(** The actually bound scrape port (resolves an ephemeral request). *)

val socket_path : t -> string
(** The control socket path the daemon bound. *)

val epoch : t -> int

val handle_request : t -> Proto.request -> Proto.outcome
(** The control-plane dispatcher, exposed for unit tests: exactly what a
    socket line goes through, minus the socket. *)

val metrics_body : t -> string
(** The [/metrics] document: registry families filtered to {e active}
    tenants (a removed tenant's families disappear even though its
    counters persist in the registry), daemon gauges
    ([qvisor_epoch], [qvisor_daemon_draining],
    [qvisor_remediations_total]), and the scrape timestamp. *)

val healthz_body : t -> string * bool
(** Body and liveness verdict ([false] once any tenant is violating). *)

val query_body :
  t -> (string * string) list -> (string, string) result
(** The [GET /query] JSON document for decoded query parameters:

    - [series]: a [*]-wildcard pattern over retention-store names
      (default [*]);
    - [tenant]: restrict to series carrying that tenant's id (the
      tenant is named, e.g. [tenant=pfabric]);
    - [start], [end]: simulated seconds; values [<= 0] are relative to
      the newest sample (defaults: the last 60 s);
    - [step]: requested bucket width in seconds (the effective step may
      be coarser — see {!Engine.Tsdb.query}).

    The reply carries [now]/[sim_time]/[uptime_seconds], the fixed
    memory bound ([memory_bytes], [per_series_bytes]), the live tenant
    table with health states, one object per selected series (points as
    [[count,sum,min,max,last]] or [null]), and the annotations that fall
    inside the window.  [Error] is a client error (bad parameter). *)

val snapshot : t -> unit
(** Fold one sample of the whole live registry into the retention store
    (what the serve loop does every [snapshot_interval]); exposed for
    tests and the snapshot-overhead benchmark. *)

val tsdb : t -> Engine.Tsdb.t
(** The daemon's retention store. *)

val uptime_seconds : t -> float
(** Wall-clock seconds since {!create}. *)

val sim_time : t -> float
