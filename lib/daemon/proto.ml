module J = Engine.Json

type request =
  | Tenant_add of { tenant : Qvisor.Tenant.t; policy : Qvisor.Policy.t option }
  | Tenant_remove of { tenant_id : int; policy : Qvisor.Policy.t option }
  | Policy_update of Qvisor.Policy.t
  | Status
  | Drain
  | Shutdown

type tenant_status = {
  ts_id : int;
  ts_name : string;
  ts_algorithm : string;
  ts_health : Engine.Health.state;
}

type status = {
  epoch : int;
  sim_time : float;
  uptime_seconds : float;
  draining : bool;
  policy : string;
  tenants : tenant_status list;
  resyntheses : int;
  remediations : int;
  tsdb_series : int;
  tsdb_memory_bytes : int;
}

type reply =
  | Added of { epoch : int }
  | Removed of { epoch : int }
  | Updated of { epoch : int }
  | Status_reply of status
  | Draining
  | Shutting_down

type outcome = (reply, Qvisor.Error.t) result

let ( let* ) = Result.bind

let config_err fmt = Printf.ksprintf (fun m -> Qvisor.Error.Config m) fmt

let field name json ~conv ~what =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (config_err "%s: missing or ill-typed field %S" what name)

let opt_policy json =
  match J.member "policy" json with
  | None | Some J.Null -> Ok None
  | Some j -> (
    match Qvisor.Serialize.policy_of_json j with
    | Ok p -> Ok (Some p)
    | Error e -> Error e)

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

let request_to_json = function
  | Tenant_add { tenant; policy } ->
    J.Obj
      ([
         ("op", J.String "tenant-add");
         ("tenant", Qvisor.Serialize.tenant_to_json tenant);
       ]
      @
      match policy with
      | None -> []
      | Some p -> [ ("policy", Qvisor.Serialize.policy_to_json p) ])
  | Tenant_remove { tenant_id; policy } ->
    J.Obj
      ([
         ("op", J.String "tenant-remove");
         ("id", J.Number (float_of_int tenant_id));
       ]
      @
      match policy with
      | None -> []
      | Some p -> [ ("policy", Qvisor.Serialize.policy_to_json p) ])
  | Policy_update p ->
    J.Obj
      [
        ("op", J.String "policy-update");
        ("policy", Qvisor.Serialize.policy_to_json p);
      ]
  | Status -> J.Obj [ ("op", J.String "status") ]
  | Drain -> J.Obj [ ("op", J.String "drain") ]
  | Shutdown -> J.Obj [ ("op", J.String "shutdown") ]

let request_of_json json =
  let* op = field "op" json ~conv:J.to_str ~what:"request" in
  match op with
  | "tenant-add" ->
    let* tenant =
      match J.member "tenant" json with
      | None -> Error (config_err "tenant-add: missing field \"tenant\"")
      | Some j -> Qvisor.Serialize.tenant_of_json j
    in
    let* policy = opt_policy json in
    Ok (Tenant_add { tenant; policy })
  | "tenant-remove" ->
    let* tenant_id = field "id" json ~conv:J.to_int ~what:"tenant-remove" in
    let* policy = opt_policy json in
    Ok (Tenant_remove { tenant_id; policy })
  | "policy-update" -> (
    match J.member "policy" json with
    | None -> Error (config_err "policy-update: missing field \"policy\"")
    | Some j ->
      let* p = Qvisor.Serialize.policy_of_json j in
      Ok (Policy_update p))
  | "status" -> Ok Status
  | "drain" -> Ok Drain
  | "shutdown" -> Ok Shutdown
  | op -> Error (config_err "unknown op %S" op)

(* ------------------------------------------------------------------ *)
(* Replies                                                            *)
(* ------------------------------------------------------------------ *)

let health_of_string = function
  | "healthy" -> Some Engine.Health.Healthy
  | "degraded" -> Some Engine.Health.Degraded
  | "violating" -> Some Engine.Health.Violating
  | _ -> None

let tenant_status_to_json ts =
  J.Obj
    [
      ("id", J.Number (float_of_int ts.ts_id));
      ("name", J.String ts.ts_name);
      ("algorithm", J.String ts.ts_algorithm);
      ("health", J.String (Engine.Health.state_to_string ts.ts_health));
    ]

let tenant_status_of_json json =
  let what = "tenant status" in
  let* ts_id = field "id" json ~conv:J.to_int ~what in
  let* ts_name = field "name" json ~conv:J.to_str ~what in
  let* ts_algorithm = field "algorithm" json ~conv:J.to_str ~what in
  let* ts_health =
    field "health" json ~conv:(fun j -> Option.bind (J.to_str j) health_of_string) ~what
  in
  Ok { ts_id; ts_name; ts_algorithm; ts_health }

let status_to_json s =
  J.Obj
    [
      ("epoch", J.Number (float_of_int s.epoch));
      ("sim_time", J.Number s.sim_time);
      ("uptime_seconds", J.Number s.uptime_seconds);
      ("draining", J.Bool s.draining);
      ("policy", J.String s.policy);
      ("tenants", J.List (List.map tenant_status_to_json s.tenants));
      ("resyntheses", J.Number (float_of_int s.resyntheses));
      ("remediations", J.Number (float_of_int s.remediations));
      ("tsdb_series", J.Number (float_of_int s.tsdb_series));
      ("tsdb_memory_bytes", J.Number (float_of_int s.tsdb_memory_bytes));
    ]

let status_of_json json =
  let what = "status" in
  let* epoch = field "epoch" json ~conv:J.to_int ~what in
  let* sim_time = field "sim_time" json ~conv:J.to_float ~what in
  let* draining = field "draining" json ~conv:J.to_bool ~what in
  let* policy = field "policy" json ~conv:J.to_str ~what in
  let* tenant_jsons = field "tenants" json ~conv:J.to_list ~what in
  let* tenants =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* ts = tenant_status_of_json j in
        Ok (ts :: acc))
      (Ok []) tenant_jsons
    |> Result.map List.rev
  in
  let* resyntheses = field "resyntheses" json ~conv:J.to_int ~what in
  let* remediations = field "remediations" json ~conv:J.to_int ~what in
  (* Post-PR-8 additions: tolerate their absence so a newer client can
     still read an older daemon's status line. *)
  let opt name ~conv ~default =
    match Option.bind (J.member name json) conv with
    | Some v -> v
    | None -> default
  in
  let uptime_seconds = opt "uptime_seconds" ~conv:J.to_float ~default:0. in
  let tsdb_series = opt "tsdb_series" ~conv:J.to_int ~default:0 in
  let tsdb_memory_bytes = opt "tsdb_memory_bytes" ~conv:J.to_int ~default:0 in
  Ok
    {
      epoch;
      sim_time;
      uptime_seconds;
      draining;
      policy;
      tenants;
      resyntheses;
      remediations;
      tsdb_series;
      tsdb_memory_bytes;
    }

let reply_fields = function
  | Added { epoch } ->
    [ ("reply", J.String "added"); ("epoch", J.Number (float_of_int epoch)) ]
  | Removed { epoch } ->
    [ ("reply", J.String "removed"); ("epoch", J.Number (float_of_int epoch)) ]
  | Updated { epoch } ->
    [ ("reply", J.String "updated"); ("epoch", J.Number (float_of_int epoch)) ]
  | Status_reply s -> [ ("reply", J.String "status"); ("status", status_to_json s) ]
  | Draining -> [ ("reply", J.String "draining") ]
  | Shutting_down -> [ ("reply", J.String "shutting-down") ]

let outcome_to_json = function
  | Ok reply -> J.Obj (("ok", J.Bool true) :: reply_fields reply)
  | Error e ->
    J.Obj
      [ ("ok", J.Bool false); ("error", Qvisor.Serialize.error_to_json e) ]

let reply_of_json json =
  let* kind = field "reply" json ~conv:J.to_str ~what:"reply" in
  let epoch () = field "epoch" json ~conv:J.to_int ~what:"reply" in
  match kind with
  | "added" ->
    let* epoch = epoch () in
    Ok (Added { epoch })
  | "removed" ->
    let* epoch = epoch () in
    Ok (Removed { epoch })
  | "updated" ->
    let* epoch = epoch () in
    Ok (Updated { epoch })
  | "status" -> (
    match J.member "status" json with
    | None -> Error (config_err "status reply: missing field \"status\"")
    | Some j ->
      let* s = status_of_json j in
      Ok (Status_reply s))
  | "draining" -> Ok Draining
  | "shutting-down" -> Ok Shutting_down
  | k -> Error (config_err "unknown reply kind %S" k)

let outcome_of_json json =
  let* ok = field "ok" json ~conv:J.to_bool ~what:"reply" in
  if ok then
    let* reply = reply_of_json json in
    Ok (Ok reply)
  else
    match J.member "error" json with
    | None -> Error (config_err "failure reply: missing field \"error\"")
    | Some j ->
      let* e = Qvisor.Serialize.error_of_json j in
      Ok (Error e)

(* ------------------------------------------------------------------ *)
(* Wire form                                                          *)
(* ------------------------------------------------------------------ *)

let request_line r = J.to_string (request_to_json r) ^ "\n"

let outcome_line o = J.to_string (outcome_to_json o) ^ "\n"

let parse_with of_json line =
  match J.of_string line with
  | Error e -> Error (config_err "malformed request line: %s" e)
  | Ok json -> of_json json

let parse_request line = parse_with request_of_json line

let parse_outcome line = parse_with outcome_of_json line
