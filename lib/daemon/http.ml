type request = { meth : string; target : string }

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n > 0 && at 0

let head_complete buf = contains ~needle:"\r\n\r\n" buf || contains ~needle:"\n\n" buf

let parse_request head =
  let line =
    match String.index_opt head '\n' with
    | None -> head
    | Some i -> String.sub head 0 i
  in
  let line =
    if line <> "" && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." ->
    Ok { meth; target }
  | _ -> Error (Printf.sprintf "malformed request line %S" line)

let response ?(status = 200) ?(reason = "OK")
    ?(content_type = "text/plain; version=0.0.4; charset=utf-8") body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status reason content_type (String.length body) body

let not_found =
  response ~status:404 ~reason:"Not Found" ~content_type:"text/plain"
    "not found\n"

let method_not_allowed =
  response ~status:405 ~reason:"Method Not Allowed" ~content_type:"text/plain"
    "only GET is served\n"

let bad_request err =
  response ~status:400 ~reason:"Bad Request" ~content_type:"text/plain"
    (err ^ "\n")
