type request = { meth : string; target : string }

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n > 0 && at 0

let head_complete buf = contains ~needle:"\r\n\r\n" buf || contains ~needle:"\n\n" buf

let parse_request head =
  let line =
    match String.index_opt head '\n' with
    | None -> head
    | Some i -> String.sub head 0 i
  in
  let line =
    if line <> "" && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." ->
    Ok { meth; target }
  | _ -> Error (Printf.sprintf "malformed request line %S" line)

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i < n then
      match s.[i] with
      | '%' when i + 2 < n -> (
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
        | _ ->
          Buffer.add_char buf '%';
          go (i + 1))
      | '+' ->
        Buffer.add_char buf ' ';
        go (i + 1)
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  Buffer.contents buf

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let rest = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' rest
      |> List.filter_map (fun kv ->
             if kv = "" then None
             else
               match String.index_opt kv '=' with
               | None -> Some (percent_decode kv, "")
               | Some e ->
                 Some
                   ( percent_decode (String.sub kv 0 e),
                     percent_decode
                       (String.sub kv (e + 1) (String.length kv - e - 1)) ))
    in
    (path, params)

let response ?(status = 200) ?(reason = "OK")
    ?(content_type = "text/plain; version=0.0.4; charset=utf-8") body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status reason content_type (String.length body) body

let not_found =
  response ~status:404 ~reason:"Not Found" ~content_type:"text/plain"
    "not found\n"

let method_not_allowed =
  response ~status:405 ~reason:"Method Not Allowed" ~content_type:"text/plain"
    "only GET is served\n"

let bad_request err =
  response ~status:400 ~reason:"Bad Request" ~content_type:"text/plain"
    (err ^ "\n")

(* ------------------------------------------------------------------ *)
(* A blocking one-shot client, for qvisor-cli top/report polling the  *)
(* daemon's own surface.  Connection-close protocol: read to EOF.     *)
(* ------------------------------------------------------------------ *)

let split_head_body raw =
  let find needle =
    let n = String.length needle and h = String.length raw in
    let rec at i = if i + n > h then None else if String.sub raw i n = needle then Some i else at (i + 1) in
    at 0
  in
  match find "\r\n\r\n" with
  | Some i -> (String.sub raw 0 i, String.sub raw (i + 4) (String.length raw - i - 4))
  | None -> (
    match find "\n\n" with
    | Some i ->
      (String.sub raw 0 i, String.sub raw (i + 2) (String.length raw - i - 2))
    | None -> (raw, ""))

let parse_status head =
  match String.split_on_char ' ' head with
  | _ :: code :: _ -> ( try int_of_string code with _ -> 0)
  | _ -> 0

let get ?(host = "127.0.0.1") ~port target =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        let req =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
            target host port
        in
        let rec send off =
          if off < String.length req then
            send (off + Unix.write_substring fd req off (String.length req - off))
        in
        send 0;
        let buf = Bytes.create 65536 in
        let out = Buffer.create 4096 in
        let rec drain () =
          let n = Unix.read fd buf 0 (Bytes.length buf) in
          if n > 0 then begin
            Buffer.add_subbytes out buf 0 n;
            drain ()
          end
        in
        drain ();
        Buffer.contents out)
  with
  | raw ->
    let head, body = split_head_body raw in
    let status = parse_status head in
    if status = 0 then Error (Printf.sprintf "malformed response %S" head)
    else Ok (status, body)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Failure msg -> Error msg
