type config = {
  cooldown : float;
  backoff_factor : float;
  backoff_max : float;
  recovery : float;
}

let default_config =
  { cooldown = 5.; backoff_factor = 2.; backoff_max = 300.; recovery = 30. }

type action = Refresh | Coarsen of { levels : int }

let action_to_string = function
  | Refresh -> "refresh"
  | Coarsen { levels } -> Printf.sprintf "coarsen:%d" levels

type decision = Hold | Fire of { attempt : int; action : action }

type subject = {
  mutable attempts : int;
  mutable not_before : float;  (* no attempt may fire earlier *)
  mutable healthy_since : float option;
}

type t = { config : config; subjects : (int, subject) Hashtbl.t }

let create ?(config = default_config) () =
  if config.cooldown <= 0. then
    invalid_arg "Remediation.create: cooldown <= 0";
  if config.backoff_factor < 1. then
    invalid_arg "Remediation.create: backoff_factor < 1";
  if config.backoff_max < config.cooldown then
    invalid_arg "Remediation.create: backoff_max < cooldown";
  if config.recovery <= 0. then
    invalid_arg "Remediation.create: recovery <= 0";
  { config; subjects = Hashtbl.create 8 }

let subject t id =
  match Hashtbl.find_opt t.subjects id with
  | Some s -> s
  | None ->
    let s = { attempts = 0; not_before = 0.; healthy_since = None } in
    Hashtbl.add t.subjects id s;
    s

(* The minimum floor mirrors Synthesizer's smallest useful resolution:
   below 4 levels a plan cannot distinguish tenants within a band. *)
let min_levels = 4

let next_action ~attempt ~levels =
  if attempt <= 1 then Refresh
  else
    let current = Option.value levels ~default:256 in
    Coarsen { levels = max min_levels (current / 2) }

let backed_off_cooldown c ~attempt =
  (* attempt is the 1-based index of the attempt that just fired. *)
  Float.min c.backoff_max
    (c.cooldown *. (c.backoff_factor ** float_of_int (attempt - 1)))

let observe t ~id ~now ~levels state =
  let s = subject t id in
  match (state : Engine.Health.state) with
  | Engine.Health.Healthy ->
    (match s.healthy_since with
    | None -> s.healthy_since <- Some now
    | Some since ->
      if now -. since >= t.config.recovery && s.attempts > 0 then begin
        s.attempts <- 0;
        s.not_before <- now
      end);
    Hold
  | Engine.Health.Degraded ->
    (* Not healthy: a recovery streak broken by degradation does not
       count, which is exactly what keeps alternating windows from
       resetting the ladder. *)
    s.healthy_since <- None;
    Hold
  | Engine.Health.Violating ->
    s.healthy_since <- None;
    if now < s.not_before then Hold
    else begin
      s.attempts <- s.attempts + 1;
      let attempt = s.attempts in
      s.not_before <- now +. backed_off_cooldown t.config ~attempt;
      Fire { attempt; action = next_action ~attempt ~levels }
    end

let attempts t ~id =
  match Hashtbl.find_opt t.subjects id with None -> 0 | Some s -> s.attempts

let forget t ~id = Hashtbl.remove t.subjects id

let audit_record ~now ~id ~name ~attempt ~action ~result ~epoch =
  let base =
    [
      ("t", Engine.Json.Number now);
      ("tenant", Engine.Json.Number (float_of_int id));
      ("name", Engine.Json.String name);
      ("attempt", Engine.Json.Number (float_of_int attempt));
      ("action", Engine.Json.String (action_to_string action));
    ]
  in
  let tail =
    match result with
    | Ok () ->
      [
        ("result", Engine.Json.String "ok");
        ("epoch", Engine.Json.Number (float_of_int epoch));
      ]
    | Error e ->
      [
        ("result", Engine.Json.String "error");
        ("error", Qvisor.Serialize.error_to_json e);
        ("epoch", Engine.Json.Number (float_of_int epoch));
      ]
  in
  Engine.Json.Obj (base @ tail)
